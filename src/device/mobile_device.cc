#include "device/mobile_device.h"

#include <cmath>

#include "util/logging.h"
#include "util/strings.h"

namespace pc::device {

std::string
servePathName(ServePath p)
{
    switch (p) {
      case ServePath::PocketSearch:
        return "PocketSearch";
      case ServePath::ThreeG:
        return "3G";
      case ServePath::Edge:
        return "Edge";
      case ServePath::Wifi:
        return "802.11g";
    }
    return "?";
}

std::string
servePathKey(ServePath p)
{
    switch (p) {
      case ServePath::PocketSearch:
        return "pocket";
      case ServePath::ThreeG:
        return "3g";
      case ServePath::Edge:
        return "edge";
      case ServePath::Wifi:
        return "wifi";
    }
    return "?";
}

CounterBag
ResilienceStats::toCounters() const
{
    CounterBag bag;
    bag.set("device.radio_attempts", radioAttempts);
    bag.set("device.retries", retries);
    bag.set("device.no_coverage_attempts", noCoverageAttempts);
    bag.set("device.failed_attempts", failedAttempts);
    bag.set("device.latency_spikes", latencySpikes);
    bag.set("device.degraded_serves", degradedServes);
    bag.set("device.stale_serves", staleServes);
    bag.set("device.offline_pages", offlinePages);
    bag.set("device.queued_misses", queuedMisses);
    bag.set("device.synced_misses", syncedMisses);
    bag.set("device.sync.corrupt_delta", corruptDeltas);
    bag.set("device.sync.rejected_delta", rejectedDeltas);
    return bag;
}

MobileDevice::MobileDevice(const core::QueryUniverse &universe,
                           const DeviceConfig &cfg,
                           const PocketSearchConfig &ps_cfg)
    : cfg_(cfg),
      browser_(cfg.browser),
      threeG_(radio::threeGConfig()),
      edge_(radio::edgeConfig()),
      wifi_(radio::wifiConfig())
{
    pc::nvm::FlashConfig fc = cfg_.flash;
    fc.capacity = cfg_.flashCapacity;
    flash_ = std::make_unique<pc::nvm::FlashDevice>(fc);
    store_ = std::make_unique<pc::simfs::FlashStore>(*flash_, cfg_.store);
    ps_ = std::make_unique<PocketSearch>(universe, *store_, ps_cfg);
}

SimTime
MobileDevice::installCommunityCache(const core::CacheContents &contents)
{
    SimTime t = 0;
    ps_->loadCommunity(contents, t);
    return t;
}

radio::RadioLink &
MobileDevice::link(ServePath p)
{
    switch (p) {
      case ServePath::ThreeG:
        return threeG_;
      case ServePath::Edge:
        return edge_;
      case ServePath::Wifi:
        return wifi_;
      case ServePath::PocketSearch:
        break;
    }
    pc_panic("no radio link for this serve path");
}

void
MobileDevice::attachFaults(fault::FaultPlan *plan)
{
    faults_ = plan;
    store_->attachFaults(plan);
}

void
MobileDevice::attachMetrics(obs::MetricRegistry *reg)
{
    registry_ = reg;
    store_->attachMetrics(reg);
    ps_->attachMetrics(reg);
    for (ServePath p :
         {ServePath::ThreeG, ServePath::Edge, ServePath::Wifi}) {
        radio::RadioLink &l = link(p);
        l.attachMetrics(reg, reg ? "device.radio." + l.name() : "");
    }
    if (!reg) {
        metrics_ = Metrics{};
        return;
    }
    metrics_.queries = &reg->counter("device.queries");
    metrics_.cacheHits = &reg->counter("device.cache_hits");
    metrics_.attempts = &reg->counter("device.radio.attempts");
    metrics_.retries = &reg->counter("device.radio.retries");
    metrics_.noCoverage = &reg->counter("device.radio.no_coverage");
    metrics_.failed = &reg->counter("device.radio.failed");
    metrics_.spikes = &reg->counter("device.radio.latency_spikes");
    metrics_.degraded = &reg->counter("device.degraded.serves");
    metrics_.stale = &reg->counter("device.degraded.stale");
    metrics_.offline = &reg->counter("device.degraded.offline_pages");
    metrics_.queued = &reg->counter("device.missq.queued");
    metrics_.synced = &reg->counter("device.missq.synced");
    metrics_.corruptDelta = &reg->counter("device.sync.corrupt_delta");
    metrics_.rejectedDelta = &reg->counter("device.sync.rejected_delta");
    const ServePath all[4] = {ServePath::PocketSearch,
                              ServePath::ThreeG, ServePath::Edge,
                              ServePath::Wifi};
    for (int i = 0; i < 4; ++i) {
        const std::string key = servePathKey(all[i]);
        metrics_.latency[i] =
            &reg->histogram("device.latency_ms." + key);
        metrics_.energy[i] = &reg->histogram("device.energy_mj." + key);
    }
}

void
MobileDevice::attachHealth(obs::health::HealthAccountant *acct)
{
    health_ = acct;
    // Radio busy is charged inside RadioLink::commit so every
    // committed exchange — query miss, community sync, miss-queue
    // drain — lands in the per-link ledger exactly once.
    for (ServePath p :
         {ServePath::ThreeG, ServePath::Edge, ServePath::Wifi}) {
        radio::RadioLink &l = link(p);
        if (acct) {
            const auto ledger = acct->radioLedger(l.name());
            l.attachHealth(ledger.first, ledger.second);
        } else {
            l.attachHealth(nullptr, nullptr);
        }
    }
}

void
MobileDevice::attachTracer(obs::Tracer *tracer,
                           const std::string &track_label)
{
    tracer_ = tracer;
    traceTrack_ = tracer ? tracer->track(track_label) : 0;
}

void
MobileDevice::traceSpan(const char *name, const char *cat, SimTime start,
                        SimTime dur) const
{
    if (!tracer_ || dur <= 0)
        return;
    tracer_->span(traceTrack_, name, cat, start, dur);
}

void
MobileDevice::finishQueryObs(const workload::PairRef &pair, ServePath path,
                             const QueryOutcome &out, SimTime t0)
{
    const int idx = int(path);
    if (registry_) {
        bumpCtr(metrics_.queries);
        if (out.cacheHit)
            bumpCtr(metrics_.cacheHits);
        metrics_.latency[idx]->observe(toMillis(out.latency));
        metrics_.energy[idx]->observe(out.energy / 1000.0);
    }
    if (health_) {
        obs::health::QueryHealthSample s;
        s.cacheHit = out.cacheHit;
        s.degraded = out.degraded;
        s.probe = out.hashLookupTime;
        s.fetch = out.fetchTime;
        s.radio = out.radioTime;
        s.backoff = out.backoffTime;
        s.render = out.renderTime;
        s.misc = out.miscTime;
        s.total = out.latency;
        health_->onQuery(s);
    }
    if (tracer_ && out.latency > 0) {
        obs::TraceSpan span;
        span.name = ps_->universe().query(pair.query).text;
        span.category = "query";
        span.track = traceTrack_;
        span.start = t0;
        span.duration = out.latency;
        span.args.emplace_back("path", servePathName(path));
        span.args.emplace_back("cache_hit",
                               out.cacheHit ? "true" : "false");
        span.args.emplace_back("degraded",
                               out.degraded ? "true" : "false");
        span.args.emplace_back("attempts",
                               strformat("%u", out.attempts));
        span.args.emplace_back("latency_ms",
                               strformat("%.3f", toMillis(out.latency)));
        span.args.emplace_back("energy_mj",
                               strformat("%.3f", out.energy / 1000.0));
        tracer_->record(std::move(span));
    }
}

void
MobileDevice::addSegment(QueryOutcome &out, const char *label, SimTime dur,
                         MilliWatts power) const
{
    if (dur <= 0)
        return;
    out.trace.push_back({label, dur, power});
    out.energy += energyOver(power, dur);
}

bool
MobileDevice::radioExchangeWithRetry(QueryOutcome &out,
                                     radio::RadioLink &radio, SimTime start)
{
    fault::FaultyLink flink(radio, faults_);
    const RetryPolicy &rp = cfg_.retry;
    SimTime elapsed = 0;
    for (u32 attempt = 1;; ++attempt) {
        ++out.attempts;
        ++resilience_.radioAttempts;
        bumpCtr(metrics_.attempts);
        if (attempt > 1) {
            ++resilience_.retries;
            bumpCtr(metrics_.retries);
        }

        const SimTime attemptStart = start + elapsed;
        const auto oc = flink.attempt(attemptStart, cfg_.requestBytes,
                                      cfg_.responseBytes, cfg_.serverTime);
        // Device trace: base power under every radio segment, plus the
        // radio's own power; the radio tail runs after the exchange but
        // only its radio power counts (the user may have left the app).
        for (const auto &seg : oc.xfer.segments) {
            if (seg.label == "tail") {
                addSegment(out, "radio-tail", seg.duration, seg.power);
            } else {
                addSegment(out, seg.label.c_str(), seg.duration,
                           cfg_.basePower + seg.power);
            }
        }
        out.radioTime += oc.xfer.latency;
        elapsed += oc.xfer.latency;

        // One span per attempt: the user-visible exchange time (the
        // radio tail costs energy, not latency, so it is not a span).
        traceSpan(oc.ok ? "radio-exchange"
                  : oc.noCoverage ? "radio-no-coverage"
                                  : "radio-failed",
                  "device", attemptStart, oc.xfer.latency);

        if (oc.ok) {
            if (oc.latencySpike) {
                ++resilience_.latencySpikes;
                bumpCtr(metrics_.spikes);
            }
            return true;
        }
        if (oc.noCoverage) {
            ++resilience_.noCoverageAttempts;
            bumpCtr(metrics_.noCoverage);
        }
        if (oc.failed) {
            ++resilience_.failedAttempts;
            bumpCtr(metrics_.failed);
        }

        if (attempt >= rp.maxAttempts || elapsed >= rp.queryBudget)
            return false;

        // Exponential backoff with jitter before the next attempt. The
        // jitter draw comes from the fault plan so a fixed seed replays
        // the exact same retry timeline.
        SimTime backoff = SimTime(std::llround(
            double(rp.baseBackoff) *
            std::pow(rp.backoffFactor, double(attempt - 1))));
        backoff = std::min(backoff, rp.maxBackoff);
        if (faults_)
            backoff = SimTime(std::llround(double(backoff) *
                                           faults_->jitter(rp.jitter)));
        if (backoff > 0) {
            addSegment(out, "backoff", backoff, cfg_.basePower);
            traceSpan("backoff", "device", start + elapsed, backoff);
            out.backoffTime += backoff;
            elapsed += backoff;
        }
    }
}

QueryOutcome
MobileDevice::serveQuery(const workload::PairRef &pair, ServePath path,
                         bool record_click)
{
    QueryOutcome out;
    core::LookupOutcome lookup;
    const SimTime t0 = now_;

    if (path == ServePath::PocketSearch) {
        lookup = ps_->lookupPair(pair, 2);
        out.hashLookupTime = lookup.hashLookupTime;
        // Operationally the user is served locally only when the result
        // they are after is among the cached results for the query.
        out.cacheHit = lookup.hit && ps_->containsPair(pair);
        if (out.cacheHit) {
            out.fetchTime = lookup.fetchTime;
            out.renderTime = browser_.renderSearchPage();
            out.miscTime = browser_.miscOverhead();
            out.latency = out.hashLookupTime + out.fetchTime +
                          out.renderTime + out.miscTime;
            addSegment(out, "local-serve",
                       out.hashLookupTime + out.fetchTime + out.miscTime,
                       cfg_.basePower);
            addSegment(out, "render", out.renderTime,
                       cfg_.basePower + browser_.config().renderPower);
            traceSpan("probe", "device", t0, out.hashLookupTime);
            traceSpan("fetch", "device", t0 + out.hashLookupTime,
                      out.fetchTime);
            traceSpan("misc", "device",
                      t0 + out.hashLookupTime + out.fetchTime,
                      out.miscTime);
            traceSpan("render", "device",
                      t0 + out.hashLookupTime + out.fetchTime +
                          out.miscTime,
                      out.renderTime);
            if (record_click) {
                SimTime learn = 0;
                ps_->recordClick(pair, learn);
                // Learning happens after results display; it costs
                // energy but not user latency.
                addSegment(out, "learn", learn, cfg_.basePower);
            }
            finishQueryObs(pair, path, out, t0);
            now_ += out.latency;
            return out;
        }
        // Miss: fall through to 3G (the phone's default data path),
        // having paid only the 10us probe.
    }

    radio::RadioLink &radio =
        link(path == ServePath::PocketSearch ? ServePath::ThreeG : path);
    addSegment(out, "probe", out.hashLookupTime, cfg_.basePower);
    traceSpan("probe", "device", t0, out.hashLookupTime);
    const bool reachable =
        radioExchangeWithRetry(out, radio, now_ + out.hashLookupTime);

    if (!reachable) {
        // Graceful degradation (the paper's offline-search story): the
        // caller never sees an error. Serve the cached — possibly stale
        // — results when the query string is cached; otherwise render
        // the offline page. Either way, queue the miss so it can be
        // fetched when coverage returns.
        out.degraded = true;
        ++resilience_.degradedServes;
        bumpCtr(metrics_.degraded);
        if (path == ServePath::PocketSearch) {
            missQueue_.push_back(pair);
            ++resilience_.queuedMisses;
            bumpCtr(metrics_.queued);
            if (lookup.hit) {
                out.staleServe = true;
                ++resilience_.staleServes;
                bumpCtr(metrics_.stale);
                out.fetchTime = lookup.fetchTime;
                addSegment(out, "stale-fetch", out.fetchTime,
                           cfg_.basePower);
            } else {
                ++resilience_.offlinePages;
                bumpCtr(metrics_.offline);
            }
        } else {
            ++resilience_.offlinePages;
            bumpCtr(metrics_.offline);
        }
        out.renderTime = browser_.renderSearchPage();
        out.miscTime = browser_.miscOverhead();
        out.latency = out.hashLookupTime + out.radioTime +
                      out.backoffTime + out.fetchTime + out.renderTime +
                      out.miscTime;
        addSegment(out, "render", out.renderTime,
                   cfg_.basePower + browser_.config().renderPower);
        addSegment(out, "misc", out.miscTime, cfg_.basePower);
        const SimTime tr = t0 + out.hashLookupTime + out.radioTime +
                           out.backoffTime;
        traceSpan("stale-fetch", "device", tr, out.fetchTime);
        traceSpan("render", "device", tr + out.fetchTime, out.renderTime);
        traceSpan("misc", "device", tr + out.fetchTime + out.renderTime,
                  out.miscTime);
        finishQueryObs(pair, path, out, t0);
        now_ += out.latency;
        return out;
    }

    out.renderTime = browser_.renderSearchPage();
    out.miscTime = browser_.miscOverhead();
    out.latency = out.hashLookupTime + out.radioTime + out.backoffTime +
                  out.renderTime + out.miscTime;

    addSegment(out, "render", out.renderTime,
               cfg_.basePower + browser_.config().renderPower);
    addSegment(out, "misc", out.miscTime, cfg_.basePower);
    const SimTime tr =
        t0 + out.hashLookupTime + out.radioTime + out.backoffTime;
    traceSpan("render", "device", tr, out.renderTime);
    traceSpan("misc", "device", tr + out.renderTime, out.miscTime);

    if (record_click && path == ServePath::PocketSearch) {
        SimTime learn = 0;
        ps_->recordClick(pair, learn);
        addSegment(out, "learn", learn, cfg_.basePower);
    }
    finishQueryObs(pair, path, out, t0);
    now_ += out.latency;
    return out;
}

MobileDevice::SyncResult
MobileDevice::syncMissQueue(ServePath path)
{
    pc_assert(path != ServePath::PocketSearch,
              "sync needs a radio path");
    SyncResult res;
    radio::RadioLink &radio = link(path);
    fault::FaultyLink flink(radio, faults_);
    std::size_t done = 0;
    while (done < missQueue_.size()) {
        ++resilience_.radioAttempts;
        bumpCtr(metrics_.attempts);
        const auto oc = flink.attempt(now_, cfg_.requestBytes,
                                      cfg_.responseBytes, cfg_.serverTime);
        res.time += oc.xfer.latency;
        res.energy += oc.xfer.radioEnergy;
        now_ += oc.xfer.latency;
        if (!oc.ok) {
            // Connectivity died again; keep the rest queued.
            if (oc.noCoverage) {
                ++resilience_.noCoverageAttempts;
                bumpCtr(metrics_.noCoverage);
            }
            if (oc.failed) {
                ++resilience_.failedAttempts;
                bumpCtr(metrics_.failed);
            }
            break;
        }
        if (oc.latencySpike) {
            ++resilience_.latencySpikes;
            bumpCtr(metrics_.spikes);
        }
        // The queued miss is now fetched: feed it to personalization
        // exactly as a served click would have been.
        SimTime learn = 0;
        ps_->recordClick(missQueue_[done], learn);
        ++res.synced;
        ++resilience_.syncedMisses;
        bumpCtr(metrics_.synced);
        ++done;
    }
    missQueue_.erase(missQueue_.begin(),
                     missQueue_.begin() + std::ptrdiff_t(done));
    res.remaining = missQueue_.size();
    if (health_ && (res.synced > 0 || res.time > 0))
        health_->onMissSync(res.synced, res.time);
    return res;
}

void
MobileDevice::beginSyncTrace()
{
    if (recorder_ == nullptr)
        return;
    syncCtx_ = recorder_->beginTrace();
    obs::SyncEvent ev;
    ev.stage = obs::SyncStage::SyncRequest;
    ev.tier = obs::SyncTier::Device;
    ev.fromVersion = communityVersion_;
    ev.toVersion = communityVersion_;
    ev.start = now_;
    recordSyncStage(ev);
}

void
MobileDevice::recordSyncStage(obs::SyncEvent ev)
{
    if (recorder_ == nullptr || !syncCtx_.valid())
        return;
    ev.traceId = syncCtx_.traceId;
    ev.span = syncCtx_.newSpan();
    ev.parent = syncCtx_.rootSpan;
    recorder_->record(ev);
    if (syncCtx_.rootSpan == 0)
        syncCtx_.rootSpan = ev.span;
}

MobileDevice::CommunitySyncResult
MobileDevice::syncCommunityUpdate(const core::CommunityDelta &delta,
                                  ServePath path)
{
    return syncCommunityFrame(
        core::frameDelta(delta),
        core::deltaWireBytes(delta, ps_->universe()), path);
}

MobileDevice::CommunitySyncResult
MobileDevice::syncCommunityFrame(const std::string &frame,
                                 Bytes wire_bytes, ServePath path)
{
    pc_assert(path != ServePath::PocketSearch,
              "community sync needs a radio path");
    CommunitySyncResult res;
    res.fromVersion = communityVersion_;
    res.toVersion = communityVersion_;
    res.deltaBytes = wire_bytes;

    // A device-initiated sync (no service orchestrating) opens its
    // own trace; a service-driven one arrives with the context already
    // holding the server-tier stages.
    if (recorder_ != nullptr && !syncCtx_.valid())
        beginSyncTrace();

    radio::RadioLink &radio = link(path);
    fault::FaultyLink flink(radio, faults_);
    const RetryPolicy &rp = cfg_.retry;
    std::optional<core::CommunityDelta> delta;
    SimTime elapsed = 0;
    for (u32 attempt = 1;; ++attempt) {
        ++res.attempts;
        ++resilience_.radioAttempts;
        bumpCtr(metrics_.attempts);
        if (attempt > 1) {
            ++resilience_.retries;
            bumpCtr(metrics_.retries);
        }
        const SimTime attemptStart = now_ + elapsed;
        const auto oc =
            flink.attempt(attemptStart, cfg_.syncRequestBytes,
                          res.deltaBytes, cfg_.serverTime);
        res.time += oc.xfer.latency;
        res.energy += oc.xfer.radioEnergy;
        elapsed += oc.xfer.latency;
        if (recorder_ != nullptr) {
            obs::SyncEvent ev;
            ev.stage = obs::SyncStage::FrameDelivery;
            ev.ok = oc.ok;
            ev.attempt = attempt;
            ev.fromVersion = res.fromVersion;
            ev.bytes = res.deltaBytes;
            ev.detail = oc.noCoverage ? 1 : oc.failed ? 2 : 0;
            ev.start = attemptStart;
            ev.duration = oc.xfer.latency;
            recordSyncStage(ev);
        }
        if (oc.ok) {
            if (oc.latencySpike) {
                ++resilience_.latencySpikes;
                bumpCtr(metrics_.spikes);
            }
            // The exchange delivered; the payload may still have been
            // mangled in flight. Verify the frame before trusting it.
            std::string received = frame;
            if (faults_)
                faults_->maybeCorruptPayload(received);
            core::FrameError ferr;
            delta = core::unframeDelta(received, &ferr);
            if (recorder_ != nullptr) {
                obs::SyncEvent ev;
                ev.stage = obs::SyncStage::CrcCheck;
                ev.ok = delta.has_value();
                ev.attempt = attempt;
                ev.fromVersion = res.fromVersion;
                ev.detail = u64(ferr);
                ev.start = now_ + elapsed;
                recordSyncStage(ev);
            }
            if (delta.has_value()) {
                res.ok = true;
                break;
            }
            ++res.corruptRejected;
            ++resilience_.corruptDeltas;
            bumpCtr(metrics_.corruptDelta);
            // Fall through: a corrupt frame re-requests like a failed
            // exchange, under the same backoff.
        } else {
            if (oc.noCoverage) {
                ++resilience_.noCoverageAttempts;
                bumpCtr(metrics_.noCoverage);
            }
            if (oc.failed) {
                ++resilience_.failedAttempts;
                bumpCtr(metrics_.failed);
            }
        }
        if (attempt >= rp.maxAttempts || elapsed >= rp.queryBudget)
            break;

        // Same deterministic backoff timeline as a query retry.
        SimTime backoff = SimTime(std::llround(
            double(rp.baseBackoff) *
            std::pow(rp.backoffFactor, double(attempt - 1))));
        backoff = std::min(backoff, rp.maxBackoff);
        if (faults_)
            backoff = SimTime(std::llround(double(backoff) *
                                           faults_->jitter(rp.jitter)));
        if (recorder_ != nullptr) {
            obs::SyncEvent ev;
            ev.stage = obs::SyncStage::Backoff;
            ev.attempt = attempt;
            ev.fromVersion = res.fromVersion;
            ev.start = now_ + elapsed;
            ev.duration = backoff;
            recordSyncStage(ev);
        }
        res.backoffTime += backoff;
        elapsed += backoff;
    }
    now_ += elapsed;
    if (!res.ok) {
        // A sync defeated by corruption (not mere connectivity)
        // advances the escalation streak: the link delivers, the
        // payloads don't survive, so a fresh full install is the way
        // out. Pure radio failure retries as-is next window.
        if (res.corruptRejected > 0)
            ++badDeltaStreak_;
        if (recorder_ != nullptr) {
            obs::SyncEvent ev;
            ev.stage = obs::SyncStage::Abort;
            ev.ok = false;
            ev.attempt = res.attempts;
            ev.fromVersion = res.fromVersion;
            ev.detail = res.corruptRejected;
            ev.start = now_;
            recordSyncStage(ev);
        }
        clearSyncTrace();
        // Abort: res.time is pure radio time — no delta was applied.
        if (health_) {
            obs::health::SyncHealthSample s;
            s.ok = false;
            s.radio = res.time;
            s.backoff = res.backoffTime;
            health_->onSync(s);
        }
        return res;
    }

    SimTime apply = 0;
    const auto ar = core::tryApplyCommunityDelta(*ps_, *delta, apply);
    if (recorder_ != nullptr) {
        obs::SyncEvent ev;
        ev.stage = obs::SyncStage::Validate;
        ev.ok = ar.ok;
        ev.fromVersion = delta->fromVersion;
        ev.toVersion = delta->toVersion;
        ev.detail = u64(ar.error);
        ev.start = now_;
        recordSyncStage(ev);
    }
    if (!ar.ok) {
        // Verified frame, but the delta does not fit this device's
        // state (version skew). Transactional apply left the cache
        // untouched; retrying the same delta cannot help.
        res.ok = false;
        res.rejected = true;
        res.applyError = ar.error;
        ++resilience_.rejectedDeltas;
        bumpCtr(metrics_.rejectedDelta);
        ++badDeltaStreak_;
        if (recorder_ != nullptr) {
            obs::SyncEvent ev;
            ev.stage = obs::SyncStage::Reject;
            ev.ok = false;
            ev.fromVersion = delta->fromVersion;
            ev.toVersion = delta->toVersion;
            ev.detail = u64(ar.error);
            ev.start = now_;
            recordSyncStage(ev);
        }
        clearSyncTrace();
        // Reject: apply time is not part of res.time (the rollback
        // leaves the cache untouched), so the ledger matches it.
        if (health_) {
            obs::health::SyncHealthSample s;
            s.ok = false;
            s.radio = res.time;
            s.backoff = res.backoffTime;
            health_->onSync(s);
        }
        return res;
    }
    if (recorder_ != nullptr) {
        obs::SyncEvent ev;
        ev.stage = obs::SyncStage::Commit;
        ev.fromVersion = delta->fromVersion;
        ev.toVersion = delta->toVersion;
        ev.detail = u64(ar.stats.added + ar.stats.evicted +
                        ar.stats.reranked);
        ev.start = now_;
        ev.duration = apply;
        recordSyncStage(ev);
    }
    clearSyncTrace();
    // Commit: res.time still holds the radio share here; apply joins
    // it below and is charged to the CPU ledger.
    if (health_) {
        obs::health::SyncHealthSample s;
        s.ok = true;
        s.radio = res.time;
        s.backoff = res.backoffTime;
        s.apply = apply;
        s.bytes = res.deltaBytes;
        health_->onSync(s);
    }
    res.apply = ar.stats;
    res.time += apply;
    now_ += apply;
    communityVersion_ = delta->toVersion;
    res.toVersion = delta->toVersion;
    badDeltaStreak_ = 0;
    return res;
}

SimTime
MobileDevice::navigationLatency(const QueryOutcome &q, PageWeight w) const
{
    return q.latency + browser_.pageLoad(w);
}

} // namespace pc::device
