#include "device/mobile_device.h"

#include <cmath>

#include "util/logging.h"

namespace pc::device {

std::string
servePathName(ServePath p)
{
    switch (p) {
      case ServePath::PocketSearch:
        return "PocketSearch";
      case ServePath::ThreeG:
        return "3G";
      case ServePath::Edge:
        return "Edge";
      case ServePath::Wifi:
        return "802.11g";
    }
    return "?";
}

CounterBag
ResilienceStats::toCounters() const
{
    CounterBag bag;
    bag.set("device.radio_attempts", radioAttempts);
    bag.set("device.retries", retries);
    bag.set("device.no_coverage_attempts", noCoverageAttempts);
    bag.set("device.failed_attempts", failedAttempts);
    bag.set("device.latency_spikes", latencySpikes);
    bag.set("device.degraded_serves", degradedServes);
    bag.set("device.stale_serves", staleServes);
    bag.set("device.offline_pages", offlinePages);
    bag.set("device.queued_misses", queuedMisses);
    bag.set("device.synced_misses", syncedMisses);
    return bag;
}

MobileDevice::MobileDevice(const core::QueryUniverse &universe,
                           const DeviceConfig &cfg,
                           const PocketSearchConfig &ps_cfg)
    : cfg_(cfg),
      browser_(cfg.browser),
      threeG_(radio::threeGConfig()),
      edge_(radio::edgeConfig()),
      wifi_(radio::wifiConfig())
{
    pc::nvm::FlashConfig fc = cfg_.flash;
    fc.capacity = cfg_.flashCapacity;
    flash_ = std::make_unique<pc::nvm::FlashDevice>(fc);
    store_ = std::make_unique<pc::simfs::FlashStore>(*flash_, cfg_.store);
    ps_ = std::make_unique<PocketSearch>(universe, *store_, ps_cfg);
}

SimTime
MobileDevice::installCommunityCache(const core::CacheContents &contents)
{
    SimTime t = 0;
    ps_->loadCommunity(contents, t);
    return t;
}

radio::RadioLink &
MobileDevice::link(ServePath p)
{
    switch (p) {
      case ServePath::ThreeG:
        return threeG_;
      case ServePath::Edge:
        return edge_;
      case ServePath::Wifi:
        return wifi_;
      case ServePath::PocketSearch:
        break;
    }
    pc_panic("no radio link for this serve path");
}

void
MobileDevice::attachFaults(fault::FaultPlan *plan)
{
    faults_ = plan;
    store_->attachFaults(plan);
}

void
MobileDevice::addSegment(QueryOutcome &out, const char *label, SimTime dur,
                         MilliWatts power) const
{
    if (dur <= 0)
        return;
    out.trace.push_back({label, dur, power});
    out.energy += energyOver(power, dur);
}

bool
MobileDevice::radioExchangeWithRetry(QueryOutcome &out,
                                     radio::RadioLink &radio, SimTime start)
{
    fault::FaultyLink flink(radio, faults_);
    const RetryPolicy &rp = cfg_.retry;
    SimTime elapsed = 0;
    for (u32 attempt = 1;; ++attempt) {
        ++out.attempts;
        ++resilience_.radioAttempts;
        if (attempt > 1)
            ++resilience_.retries;

        const auto oc = flink.attempt(start + elapsed, cfg_.requestBytes,
                                      cfg_.responseBytes, cfg_.serverTime);
        // Device trace: base power under every radio segment, plus the
        // radio's own power; the radio tail runs after the exchange but
        // only its radio power counts (the user may have left the app).
        for (const auto &seg : oc.xfer.segments) {
            if (seg.label == "tail") {
                addSegment(out, "radio-tail", seg.duration, seg.power);
            } else {
                addSegment(out, seg.label.c_str(), seg.duration,
                           cfg_.basePower + seg.power);
            }
        }
        out.radioTime += oc.xfer.latency;
        elapsed += oc.xfer.latency;

        if (oc.ok) {
            if (oc.latencySpike)
                ++resilience_.latencySpikes;
            return true;
        }
        if (oc.noCoverage)
            ++resilience_.noCoverageAttempts;
        if (oc.failed)
            ++resilience_.failedAttempts;

        if (attempt >= rp.maxAttempts || elapsed >= rp.queryBudget)
            return false;

        // Exponential backoff with jitter before the next attempt. The
        // jitter draw comes from the fault plan so a fixed seed replays
        // the exact same retry timeline.
        SimTime backoff = SimTime(std::llround(
            double(rp.baseBackoff) *
            std::pow(rp.backoffFactor, double(attempt - 1))));
        backoff = std::min(backoff, rp.maxBackoff);
        if (faults_)
            backoff = SimTime(std::llround(double(backoff) *
                                           faults_->jitter(rp.jitter)));
        if (backoff > 0) {
            addSegment(out, "backoff", backoff, cfg_.basePower);
            out.backoffTime += backoff;
            elapsed += backoff;
        }
    }
}

QueryOutcome
MobileDevice::serveQuery(const workload::PairRef &pair, ServePath path,
                         bool record_click)
{
    QueryOutcome out;
    core::LookupOutcome lookup;

    if (path == ServePath::PocketSearch) {
        lookup = ps_->lookupPair(pair, 2);
        out.hashLookupTime = lookup.hashLookupTime;
        // Operationally the user is served locally only when the result
        // they are after is among the cached results for the query.
        out.cacheHit = lookup.hit && ps_->containsPair(pair);
        if (out.cacheHit) {
            out.fetchTime = lookup.fetchTime;
            out.renderTime = browser_.renderSearchPage();
            out.miscTime = browser_.miscOverhead();
            out.latency = out.hashLookupTime + out.fetchTime +
                          out.renderTime + out.miscTime;
            addSegment(out, "local-serve",
                       out.hashLookupTime + out.fetchTime + out.miscTime,
                       cfg_.basePower);
            addSegment(out, "render", out.renderTime,
                       cfg_.basePower + browser_.config().renderPower);
            if (record_click) {
                SimTime learn = 0;
                ps_->recordClick(pair, learn);
                // Learning happens after results display; it costs
                // energy but not user latency.
                addSegment(out, "learn", learn, cfg_.basePower);
            }
            now_ += out.latency;
            return out;
        }
        // Miss: fall through to 3G (the phone's default data path),
        // having paid only the 10us probe.
    }

    radio::RadioLink &radio =
        link(path == ServePath::PocketSearch ? ServePath::ThreeG : path);
    addSegment(out, "probe", out.hashLookupTime, cfg_.basePower);
    const bool reachable =
        radioExchangeWithRetry(out, radio, now_ + out.hashLookupTime);

    if (!reachable) {
        // Graceful degradation (the paper's offline-search story): the
        // caller never sees an error. Serve the cached — possibly stale
        // — results when the query string is cached; otherwise render
        // the offline page. Either way, queue the miss so it can be
        // fetched when coverage returns.
        out.degraded = true;
        ++resilience_.degradedServes;
        if (path == ServePath::PocketSearch) {
            missQueue_.push_back(pair);
            ++resilience_.queuedMisses;
            if (lookup.hit) {
                out.staleServe = true;
                ++resilience_.staleServes;
                out.fetchTime = lookup.fetchTime;
                addSegment(out, "stale-fetch", out.fetchTime,
                           cfg_.basePower);
            } else {
                ++resilience_.offlinePages;
            }
        } else {
            ++resilience_.offlinePages;
        }
        out.renderTime = browser_.renderSearchPage();
        out.miscTime = browser_.miscOverhead();
        out.latency = out.hashLookupTime + out.radioTime +
                      out.backoffTime + out.fetchTime + out.renderTime +
                      out.miscTime;
        addSegment(out, "render", out.renderTime,
                   cfg_.basePower + browser_.config().renderPower);
        addSegment(out, "misc", out.miscTime, cfg_.basePower);
        now_ += out.latency;
        return out;
    }

    out.renderTime = browser_.renderSearchPage();
    out.miscTime = browser_.miscOverhead();
    out.latency = out.hashLookupTime + out.radioTime + out.backoffTime +
                  out.renderTime + out.miscTime;

    addSegment(out, "render", out.renderTime,
               cfg_.basePower + browser_.config().renderPower);
    addSegment(out, "misc", out.miscTime, cfg_.basePower);

    if (record_click && path == ServePath::PocketSearch) {
        SimTime learn = 0;
        ps_->recordClick(pair, learn);
        addSegment(out, "learn", learn, cfg_.basePower);
    }
    now_ += out.latency;
    return out;
}

MobileDevice::SyncResult
MobileDevice::syncMissQueue(ServePath path)
{
    pc_assert(path != ServePath::PocketSearch,
              "sync needs a radio path");
    SyncResult res;
    radio::RadioLink &radio = link(path);
    fault::FaultyLink flink(radio, faults_);
    std::size_t done = 0;
    while (done < missQueue_.size()) {
        ++resilience_.radioAttempts;
        const auto oc = flink.attempt(now_, cfg_.requestBytes,
                                      cfg_.responseBytes, cfg_.serverTime);
        res.time += oc.xfer.latency;
        res.energy += oc.xfer.radioEnergy;
        now_ += oc.xfer.latency;
        if (!oc.ok) {
            // Connectivity died again; keep the rest queued.
            if (oc.noCoverage)
                ++resilience_.noCoverageAttempts;
            if (oc.failed)
                ++resilience_.failedAttempts;
            break;
        }
        if (oc.latencySpike)
            ++resilience_.latencySpikes;
        // The queued miss is now fetched: feed it to personalization
        // exactly as a served click would have been.
        SimTime learn = 0;
        ps_->recordClick(missQueue_[done], learn);
        ++res.synced;
        ++resilience_.syncedMisses;
        ++done;
    }
    missQueue_.erase(missQueue_.begin(),
                     missQueue_.begin() + std::ptrdiff_t(done));
    res.remaining = missQueue_.size();
    return res;
}

SimTime
MobileDevice::navigationLatency(const QueryOutcome &q, PageWeight w) const
{
    return q.latency + browser_.pageLoad(w);
}

} // namespace pc::device
