#include "device/mobile_device.h"

#include "util/logging.h"

namespace pc::device {

std::string
servePathName(ServePath p)
{
    switch (p) {
      case ServePath::PocketSearch:
        return "PocketSearch";
      case ServePath::ThreeG:
        return "3G";
      case ServePath::Edge:
        return "Edge";
      case ServePath::Wifi:
        return "802.11g";
    }
    return "?";
}

MobileDevice::MobileDevice(const core::QueryUniverse &universe,
                           const DeviceConfig &cfg,
                           const PocketSearchConfig &ps_cfg)
    : cfg_(cfg),
      browser_(cfg.browser),
      threeG_(radio::threeGConfig()),
      edge_(radio::edgeConfig()),
      wifi_(radio::wifiConfig())
{
    pc::nvm::FlashConfig fc = cfg_.flash;
    fc.capacity = cfg_.flashCapacity;
    flash_ = std::make_unique<pc::nvm::FlashDevice>(fc);
    store_ = std::make_unique<pc::simfs::FlashStore>(*flash_, cfg_.store);
    ps_ = std::make_unique<PocketSearch>(universe, *store_, ps_cfg);
}

SimTime
MobileDevice::installCommunityCache(const core::CacheContents &contents)
{
    SimTime t = 0;
    ps_->loadCommunity(contents, t);
    return t;
}

radio::RadioLink &
MobileDevice::link(ServePath p)
{
    switch (p) {
      case ServePath::ThreeG:
        return threeG_;
      case ServePath::Edge:
        return edge_;
      case ServePath::Wifi:
        return wifi_;
      case ServePath::PocketSearch:
        break;
    }
    pc_panic("no radio link for this serve path");
}

void
MobileDevice::addSegment(QueryOutcome &out, const char *label, SimTime dur,
                         MilliWatts power) const
{
    if (dur <= 0)
        return;
    out.trace.push_back({label, dur, power});
    out.energy += energyOver(power, dur);
}

QueryOutcome
MobileDevice::serveQuery(const workload::PairRef &pair, ServePath path,
                         bool record_click)
{
    QueryOutcome out;

    if (path == ServePath::PocketSearch) {
        auto lookup = ps_->lookupPair(pair, 2);
        out.hashLookupTime = lookup.hashLookupTime;
        // Operationally the user is served locally only when the result
        // they are after is among the cached results for the query.
        out.cacheHit = lookup.hit && ps_->containsPair(pair);
        if (out.cacheHit) {
            out.fetchTime = lookup.fetchTime;
            out.renderTime = browser_.renderSearchPage();
            out.miscTime = browser_.miscOverhead();
            out.latency = out.hashLookupTime + out.fetchTime +
                          out.renderTime + out.miscTime;
            addSegment(out, "local-serve",
                       out.hashLookupTime + out.fetchTime + out.miscTime,
                       cfg_.basePower);
            addSegment(out, "render", out.renderTime,
                       cfg_.basePower + browser_.config().renderPower);
            if (record_click) {
                SimTime learn = 0;
                ps_->recordClick(pair, learn);
                // Learning happens after results display; it costs
                // energy but not user latency.
                addSegment(out, "learn", learn, cfg_.basePower);
            }
            now_ += out.latency;
            return out;
        }
        // Miss: fall through to 3G (the phone's default data path),
        // having paid only the 10us probe.
    }

    radio::RadioLink &radio =
        link(path == ServePath::PocketSearch ? ServePath::ThreeG : path);
    const auto xfer = radio.request(now_ + out.hashLookupTime,
                                    cfg_.requestBytes, cfg_.responseBytes,
                                    cfg_.serverTime);
    out.radioTime = xfer.latency;
    out.renderTime = browser_.renderSearchPage();
    out.miscTime = browser_.miscOverhead();
    out.latency = out.hashLookupTime + out.radioTime + out.renderTime +
                  out.miscTime;

    // Device trace: base power under every radio segment, plus the
    // radio's own power; then the render burst; the radio tail runs
    // concurrently with/after render but only its radio power counts
    // (the user may have left the app).
    addSegment(out, "probe", out.hashLookupTime, cfg_.basePower);
    for (const auto &seg : xfer.segments) {
        if (seg.label == "tail") {
            addSegment(out, "radio-tail", seg.duration, seg.power);
        } else {
            addSegment(out, seg.label.c_str(), seg.duration,
                       cfg_.basePower + seg.power);
        }
    }
    addSegment(out, "render", out.renderTime,
               cfg_.basePower + browser_.config().renderPower);
    addSegment(out, "misc", out.miscTime, cfg_.basePower);

    if (record_click && path == ServePath::PocketSearch) {
        SimTime learn = 0;
        ps_->recordClick(pair, learn);
        addSegment(out, "learn", learn, cfg_.basePower);
    }
    now_ += out.latency;
    return out;
}

SimTime
MobileDevice::navigationLatency(const QueryOutcome &q, PageWeight w) const
{
    return q.latency + browser_.pageLoad(w);
}

} // namespace pc::device
