#include "device/arbiter.h"

#include <algorithm>

#include "util/logging.h"

namespace pc::device {

void
ResourceArbiter::attach(core::Cloudlet &cloudlet)
{
    cloudlets_.push_back(&cloudlet);
}

Bytes
ResourceArbiter::totalDataBytes() const
{
    Bytes total = 0;
    for (const auto *c : cloudlets_)
        total += c->dataBytes();
    return total;
}

Bytes
ResourceArbiter::totalIndexBytes() const
{
    Bytes total = 0;
    for (const auto *c : cloudlets_)
        total += c->indexBytes();
    return total;
}

double
ResourceArbiter::valueDensity(const core::Cloudlet &c)
{
    // Hits delivered per cached byte. +1 terms keep fresh (unused)
    // cloudlets comparable without dividing by zero.
    return (double(c.hits()) + 1.0) / (double(c.dataBytes()) + 1.0);
}

ArbitrationResult
ResourceArbiter::enforceDataBudget(Bytes budget)
{
    ArbitrationResult result;
    result.totalBefore = totalDataBytes();
    result.totalAfter = result.totalBefore;
    if (result.totalBefore <= budget)
        return result;

    // Least valuable first.
    std::vector<core::Cloudlet *> order = cloudlets_;
    std::sort(order.begin(), order.end(),
              [](const core::Cloudlet *a, const core::Cloudlet *b) {
                  return valueDensity(*a) < valueDensity(*b);
              });

    Bytes excess = result.totalBefore - budget;
    for (core::Cloudlet *c : order) {
        if (excess == 0)
            break;
        const Bytes before = c->dataBytes();
        // Ask this cloudlet to give up as much of the excess as it
        // holds; it may release less (e.g. search only shrinks via its
        // nightly rebuild).
        const Bytes target = before > excess ? before - excess : 0;
        const Bytes released = c->shrinkTo(target);
        if (released > 0) {
            result.actions.push_back(
                ArbitrationAction{c->name(), before, released});
            excess = released >= excess ? 0 : excess - released;
        }
    }
    result.totalAfter = totalDataBytes();
    return result;
}

} // namespace pc::device
