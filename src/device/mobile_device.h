/**
 * @file
 * The simulated smartphone: flash + file store + PocketSearch + radios +
 * browser, with end-to-end latency and energy accounting.
 *
 * This is the measurement platform standing in for the paper's Sony
 * Ericsson Xperia X1a (Windows Mobile 6.1, AT&T): it reproduces the
 * serve-a-query pipeline of Section 6.1 — cache probe, local fetch and
 * render on a hit; radio exchange and render on a miss — and produces
 * the per-query latency (Figure 15a), energy (Figure 15b), breakdown
 * (Table 4), navigation times (Table 5), and power traces (Figure 16).
 */

#ifndef PC_DEVICE_MOBILE_DEVICE_H
#define PC_DEVICE_MOBILE_DEVICE_H

#include <memory>
#include <string>
#include <vector>

#include "core/pocket_search.h"
#include "device/browser.h"
#include "radio/link.h"

namespace pc::device {

using core::CacheMode;
using core::PocketSearch;
using core::PocketSearchConfig;
using radio::PowerSegment;

/** Which path a query is served through. */
enum class ServePath
{
    PocketSearch, ///< Cache first; radio fallback on miss.
    ThreeG,       ///< Always over 3G.
    Edge,         ///< Always over EDGE.
    Wifi,         ///< Always over 802.11g.
};

/** Display name of a serve path. */
std::string servePathName(ServePath p);

/** Device-level constants. */
struct DeviceConfig
{
    /** Base platform power while the user is interacting (screen+CPU). */
    MilliWatts basePower = 550.0;
    /** Flash capacity dedicated to cloudlets. */
    Bytes flashCapacity = 1 * kGiB;
    /** Search request payload (query + headers). */
    Bytes requestBytes = 1 * kKiB;
    /** Search response payload (results page). */
    Bytes responseBytes = 100 * kKiB;
    /** Server-side processing time per query. */
    SimTime serverTime = fromMillis(250);
    BrowserConfig browser{};
    pc::simfs::StoreConfig store{};
    pc::nvm::FlashConfig flash{};
};

/** Everything measured about one served query. */
struct QueryOutcome
{
    bool cacheHit = false;
    SimTime latency = 0;        ///< Submit -> results page rendered.
    MicroJoules energy = 0;     ///< Whole-device energy for the query.
    SimTime hashLookupTime = 0; ///< Cache probe time.
    SimTime fetchTime = 0;      ///< Flash retrieval time (hits).
    SimTime radioTime = 0;      ///< Radio exchange time (misses).
    SimTime renderTime = 0;     ///< Browser render time.
    SimTime miscTime = 0;       ///< App overhead.
    /** Whole-device power timeline (base + radio), for Figure 16. */
    std::vector<PowerSegment> trace;
};

/**
 * The simulated phone.
 */
class MobileDevice
{
  public:
    /**
     * @param universe World model for PocketSearch.
     * @param cfg Device constants.
     * @param ps_cfg PocketSearch configuration.
     */
    MobileDevice(const core::QueryUniverse &universe,
                 const DeviceConfig &cfg = {},
                 const PocketSearchConfig &ps_cfg = {});

    /**
     * Install community cache contents (the overnight push).
     * @return Flash write time of the push.
     */
    SimTime installCommunityCache(const core::CacheContents &contents);

    /**
     * Serve one query end to end.
     *
     * @param pair The (query, clicked result) intent being replayed.
     * @param path Serving policy.
     * @param record_click Whether to feed the click back into
     *        personalization (hit-rate experiments do; latency
     *        microbenchmarks usually don't).
     */
    QueryOutcome serveQuery(const workload::PairRef &pair, ServePath path,
                            bool record_click = true);

    /**
     * Navigation latency: query serving plus landing-page load
     * (Table 5). The landing page always loads over 3G.
     */
    SimTime navigationLatency(const QueryOutcome &q, PageWeight w) const;

    /** The cache. */
    PocketSearch &pocketSearch() { return *ps_; }
    /** The cache. */
    const PocketSearch &pocketSearch() const { return *ps_; }

    /** A radio by path (must not be PocketSearch). */
    radio::RadioLink &link(ServePath p);

    /** Simulated now (advances as queries are served). */
    SimTime now() const { return now_; }

    /** Advance simulated time (e.g., idle gaps between queries). */
    void advanceTime(SimTime dt) { now_ += dt; }

    /** Device constants. */
    const DeviceConfig &config() const { return cfg_; }

    /** The flash file store (inspection). */
    pc::simfs::FlashStore &store() { return *store_; }

    /** The raw flash device (inspection). */
    pc::nvm::FlashDevice &flash() { return *flash_; }

  private:
    /** Append a device-power segment and charge energy. */
    void addSegment(QueryOutcome &out, const char *label, SimTime dur,
                    MilliWatts power) const;

    DeviceConfig cfg_;
    std::unique_ptr<pc::nvm::FlashDevice> flash_;
    std::unique_ptr<pc::simfs::FlashStore> store_;
    std::unique_ptr<PocketSearch> ps_;
    Browser browser_;
    radio::RadioLink threeG_;
    radio::RadioLink edge_;
    radio::RadioLink wifi_;
    SimTime now_ = 0;
};

} // namespace pc::device

#endif // PC_DEVICE_MOBILE_DEVICE_H
