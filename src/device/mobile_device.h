/**
 * @file
 * The simulated smartphone: flash + file store + PocketSearch + radios +
 * browser, with end-to-end latency and energy accounting.
 *
 * This is the measurement platform standing in for the paper's Sony
 * Ericsson Xperia X1a (Windows Mobile 6.1, AT&T): it reproduces the
 * serve-a-query pipeline of Section 6.1 — cache probe, local fetch and
 * render on a hit; radio exchange and render on a miss — and produces
 * the per-query latency (Figure 15a), energy (Figure 15b), breakdown
 * (Table 4), navigation times (Table 5), and power traces (Figure 16).
 */

#ifndef PC_DEVICE_MOBILE_DEVICE_H
#define PC_DEVICE_MOBILE_DEVICE_H

#include <memory>
#include <string>
#include <vector>

#include "core/delta.h"
#include "core/pocket_search.h"
#include "device/browser.h"
#include "fault/faulty_link.h"
#include "obs/causal.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "radio/link.h"
#include "util/stats.h"

namespace pc::device {

using core::CacheMode;
using core::PocketSearch;
using core::PocketSearchConfig;
using radio::PowerSegment;

/** Which path a query is served through. */
enum class ServePath
{
    PocketSearch, ///< Cache first; radio fallback on miss.
    ThreeG,       ///< Always over 3G.
    Edge,         ///< Always over EDGE.
    Wifi,         ///< Always over 802.11g.
};

/** Display name of a serve path. */
std::string servePathName(ServePath p);

/** Metric-name-safe key of a serve path ("pocket", "3g", ...). */
std::string servePathKey(ServePath p);

/**
 * How the device retries failed radio exchanges (bounded retries,
 * exponential backoff with jitter, per-query time budget). With no
 * fault plan attached the first attempt always succeeds and none of
 * this machinery engages.
 */
struct RetryPolicy
{
    /** Total exchange attempts per query (1 = no retry). */
    u32 maxAttempts = 4;
    /** Backoff before the first retry. */
    SimTime baseBackoff = fromMillis(400);
    /** Backoff growth per retry (exponential). */
    double backoffFactor = 2.0;
    /** Backoff ceiling. */
    SimTime maxBackoff = 5 * kSecond;
    /** Multiplicative jitter (+-fraction) on each backoff. */
    double jitter = 0.25;
    /** Give up once a query has burned this much wall time. */
    SimTime queryBudget = 45 * kSecond;
};

/** Device-level constants. */
struct DeviceConfig
{
    /** Base platform power while the user is interacting (screen+CPU). */
    MilliWatts basePower = 550.0;
    /** Flash capacity dedicated to cloudlets. */
    Bytes flashCapacity = 1 * kGiB;
    /** Search request payload (query + headers). */
    Bytes requestBytes = 1 * kKiB;
    /** Community-sync request payload (device id + version). */
    Bytes syncRequestBytes = 256;
    /** Search response payload (results page). */
    Bytes responseBytes = 100 * kKiB;
    /** Server-side processing time per query. */
    SimTime serverTime = fromMillis(250);
    BrowserConfig browser{};
    pc::simfs::StoreConfig store{};
    pc::nvm::FlashConfig flash{};
    RetryPolicy retry{};
};

/** Resilience counters: what the device did about injected faults. */
struct ResilienceStats
{
    u64 radioAttempts = 0;     ///< Exchange attempts started.
    u64 retries = 0;           ///< Attempts beyond a query's first.
    u64 noCoverageAttempts = 0; ///< Attempts begun inside an outage.
    u64 failedAttempts = 0;    ///< Attempts killed mid-exchange.
    u64 latencySpikes = 0;     ///< Successful but congested exchanges.
    u64 degradedServes = 0;    ///< Queries answered locally because the
                               ///< cloud stayed unreachable.
    u64 staleServes = 0;       ///< Degraded answers with cached results.
    u64 offlinePages = 0;      ///< Degraded answers with nothing cached.
    u64 queuedMisses = 0;      ///< Misses queued for later sync.
    u64 syncedMisses = 0;      ///< Queued misses later fetched.
    u64 corruptDeltas = 0;     ///< Delta frames failing the CRC check.
    u64 rejectedDeltas = 0;    ///< Verified deltas failing validation.

    /** Counters as a mergeable bag (workbench reporting). */
    CounterBag toCounters() const;
};

/** Everything measured about one served query. */
struct QueryOutcome
{
    bool cacheHit = false;
    SimTime latency = 0;        ///< Submit -> results page rendered.
    MicroJoules energy = 0;     ///< Whole-device energy for the query.
    SimTime hashLookupTime = 0; ///< Cache probe time.
    SimTime fetchTime = 0;      ///< Flash retrieval time (hits).
    SimTime radioTime = 0;      ///< Radio exchange time (misses).
    SimTime renderTime = 0;     ///< Browser render time.
    SimTime miscTime = 0;       ///< App overhead.
    SimTime backoffTime = 0;    ///< Time spent waiting between retries.
    u32 attempts = 0;           ///< Radio attempts made (0 on cache hit).
    /**
     * The cloud stayed unreachable, so the query was answered locally
     * (stale cached results or an offline page) and the miss queued.
     * Never an error: degradation is the failure mode the caller sees.
     */
    bool degraded = false;
    /** Degraded answer carried cached (possibly stale) results. */
    bool staleServe = false;
    /** Whole-device power timeline (base + radio), for Figure 16. */
    std::vector<PowerSegment> trace;
};

/**
 * The simulated phone.
 */
class MobileDevice
{
  public:
    /**
     * @param universe World model for PocketSearch.
     * @param cfg Device constants.
     * @param ps_cfg PocketSearch configuration.
     */
    MobileDevice(const core::QueryUniverse &universe,
                 const DeviceConfig &cfg = {},
                 const PocketSearchConfig &ps_cfg = {});

    /**
     * Install community cache contents (the overnight push).
     * @return Flash write time of the push.
     */
    SimTime installCommunityCache(const core::CacheContents &contents);

    /**
     * Serve one query end to end.
     *
     * @param pair The (query, clicked result) intent being replayed.
     * @param path Serving policy.
     * @param record_click Whether to feed the click back into
     *        personalization (hit-rate experiments do; latency
     *        microbenchmarks usually don't).
     */
    QueryOutcome serveQuery(const workload::PairRef &pair, ServePath path,
                            bool record_click = true);

    /**
     * Navigation latency: query serving plus landing-page load
     * (Table 5). The landing page always loads over 3G.
     */
    SimTime navigationLatency(const QueryOutcome &q, PageWeight w) const;

    /** The cache. */
    PocketSearch &pocketSearch() { return *ps_; }
    /** The cache. */
    const PocketSearch &pocketSearch() const { return *ps_; }

    /** A radio by path (must not be PocketSearch). */
    radio::RadioLink &link(ServePath p);

    /**
     * Attach a fault plan: radio exchanges become fallible (the retry
     * policy engages) and the flash store becomes crash-able/bit-rotten.
     * nullptr detaches and restores perfect-hardware behaviour.
     */
    void attachFaults(fault::FaultPlan *plan);

    /** The attached fault plan (may be nullptr). */
    fault::FaultPlan *faults() const { return faults_; }

    /**
     * Attach a metrics registry: the device registers its counters
     * ("device.queries", "device.radio.attempts", ...), per-path
     * latency/energy histograms ("device.latency_ms.<path>"), and
     * wires the store ("simfs.*"), PocketSearch ("core.search.*") and
     * every radio link ("device.radio.<link>.*") into the same
     * registry. nullptr detaches everything.
     */
    void attachMetrics(obs::MetricRegistry *reg);

    /**
     * Attach a tracer: every served query records spans on the track
     * named `track_label` — an umbrella span (category "query") plus
     * component spans (category "device": probe, fetch, radio
     * attempts, backoffs, render, ...) whose durations sum exactly to
     * the query's end-to-end latency. nullptr detaches.
     */
    void attachTracer(obs::Tracer *tracer,
                      const std::string &track_label = "device");

    /**
     * Attach a flight recorder: every community sync records typed
     * causal events (obs/causal.h) covering both tiers of the
     * pipeline. nullptr detaches; a detached device pays exactly one
     * pointer test per sync stage — no allocation, no RNG draw, no
     * behaviour change (bench_trace_overhead gates this).
     */
    void attachFlightRecorder(obs::FlightRecorder *rec)
    {
        recorder_ = rec;
    }

    /** The attached flight recorder (may be nullptr). */
    obs::FlightRecorder *flightRecorder() const { return recorder_; }

    /**
     * Attach a health accountant (obs/health.h): every served query
     * and community sync folds its already-measured spans into the
     * busy-time/demand ledgers, and each radio link's committed
     * exchanges bump its per-link ledger. nullptr detaches. Same cost
     * contract as the flight recorder: detached is one pointer test,
     * attached is cached-counter adds — zero allocations, zero RNG
     * draws, zero behaviour change (health_test gates this).
     */
    void attachHealth(obs::health::HealthAccountant *acct);

    /** The attached health accountant (may be nullptr). */
    obs::health::HealthAccountant *health() const { return health_; }

    /**
     * Open the causal trace of the next community sync and record its
     * root SyncRequest event. The cloud service calls this before the
     * version lookup so server-tier stages land in the same trace; a
     * device-initiated sync opens one lazily. No-op without a
     * recorder.
     */
    void beginSyncTrace();

    /** Discard the active sync trace (shed / no-version outcomes). */
    void clearSyncTrace() { syncCtx_ = obs::TraceContext{}; }

    /**
     * Record one stage into the active sync trace: the context's
     * trace/span ids are filled in here, then the event is copied into
     * the recorder. No-op when no recorder or no open trace. The
     * service uses this to land server-tier stages in the device's
     * ring — the recorder is private to the device's worker, so the
     * cross-tier chain stays thread-free and deterministic.
     */
    void recordSyncStage(obs::SyncEvent ev);

    /** What the device did about injected faults. */
    const ResilienceStats &resilience() const { return resilience_; }

    /** Reset resilience counters. */
    void resetResilience() { resilience_ = ResilienceStats{}; }

    /** Misses queued while the cloud was unreachable (oldest first). */
    const std::vector<workload::PairRef> &missQueue() const
    {
        return missQueue_;
    }

    /** Outcome of a miss-queue sync pass. */
    struct SyncResult
    {
        u64 synced = 0;        ///< Queued misses fetched and learned.
        u64 remaining = 0;     ///< Still queued (connectivity died again).
        SimTime time = 0;      ///< Radio time spent syncing.
        MicroJoules energy = 0; ///< Radio energy spent syncing.
    };

    /**
     * Drain the offline miss queue over the given radio path: fetch
     * each queued miss and feed it to personalization, stopping early
     * if connectivity fails again. Call when coverage returns.
     */
    SyncResult syncMissQueue(ServePath path = ServePath::ThreeG);

    /** Everything measured about one community-model sync. */
    struct CommunitySyncResult
    {
        bool ok = false;     ///< Delta downloaded and applied.
        u64 fromVersion = 0; ///< Device model version before the sync.
        u64 toVersion = 0;   ///< Version after (== from on failure).
        u32 attempts = 0;    ///< Radio attempts made.
        Bytes deltaBytes = 0;  ///< Downlink payload (delta wire size).
        SimTime time = 0;      ///< Radio + apply time.
        SimTime backoffTime = 0; ///< Wait between retry attempts.
        MicroJoules energy = 0; ///< Radio energy spent.
        u32 corruptRejected = 0; ///< Frames rejected by the CRC check.
        /** The verified delta failed validation (state mismatch). */
        bool rejected = false;
        /**
         * The server shed the sync (admission control) before any
         * radio traffic; retry next window. Set by the service, never
         * by the device itself.
         */
        bool shed = false;
        /** Why validation rejected it (None unless `rejected`). */
        core::DeltaApplyError applyError = core::DeltaApplyError::None;
        core::DeltaApplyStats apply{}; ///< Application accounting.
    };

    /**
     * Download and apply one community-model delta from the cloud
     * update service over a radio path, with the same retry/backoff
     * machinery (and fault plan) a query miss uses. The delta travels
     * as a CRC-32 integrity frame (core::frameDelta); this overload
     * frames it locally and defers to syncCommunityFrame. On success
     * the delta is applied to PocketSearch (core/delta.h rules) and
     * the device's community version advances to delta.toVersion; on
     * failure the cache and version are untouched and the service can
     * retry next sync window.
     */
    CommunitySyncResult
    syncCommunityUpdate(const core::CommunityDelta &delta,
                        ServePath path = ServePath::ThreeG);

    /**
     * Download and apply one framed community delta. Every radio
     * attempt delivers `frame` through the attached fault plan (which
     * may flip a bit in flight); a frame that fails the CRC-32 check
     * is counted, dropped, and re-requested under the standard retry
     * backoff — corrupt bytes never reach the cache. A frame that
     * verifies but whose delta fails transactional validation
     * (version skew: the device's table is not the state the delta
     * was diffed against) is rejected whole with `rejected` set and
     * no retry, since re-downloading the same mismatch cannot help.
     * Both terminal outcomes advance the bad-delta streak; after
     * kBadDeltaEscalation consecutive bad syncs needsFullInstall()
     * turns true and the service falls back to a full install, which
     * resets the streak when it lands.
     *
     * @param frame core::frameDelta() bytes as sent by the service.
     * @param wire_bytes Modelled downlink payload for the radio
     *        (frame plus patched flash records; deltaWireBytes).
     * @param path Radio path.
     */
    CommunitySyncResult
    syncCommunityFrame(const std::string &frame, Bytes wire_bytes,
                       ServePath path = ServePath::ThreeG);

    /** Consecutive bad syncs before escalating to a full install. */
    static constexpr u32 kBadDeltaEscalation = 3;

    /**
     * True once kBadDeltaEscalation consecutive syncs ended in a
     * corrupt or rejected delta: incremental updates are not landing,
     * so the next sync should be a full install (fromVersion 0).
     */
    bool needsFullInstall() const
    {
        return badDeltaStreak_ >= kBadDeltaEscalation;
    }

    /** Consecutive syncs that ended corrupt/rejected (0 after a success). */
    u32 badDeltaStreak() const { return badDeltaStreak_; }

    /** Community-model version last synced (0 = never synced). */
    u64 communityVersion() const { return communityVersion_; }

    /** Pin the community version (tests / snapshot restore). */
    void setCommunityVersion(u64 v) { communityVersion_ = v; }

    /** Simulated now (advances as queries are served). */
    SimTime now() const { return now_; }

    /** Advance simulated time (e.g., idle gaps between queries). */
    void advanceTime(SimTime dt) { now_ += dt; }

    /** Device constants. */
    const DeviceConfig &config() const { return cfg_; }

    /** The flash file store (inspection). */
    pc::simfs::FlashStore &store() { return *store_; }

    /** The raw flash device (inspection). */
    pc::nvm::FlashDevice &flash() { return *flash_; }

  private:
    /** Cached metric handles (null when no registry is attached). */
    struct Metrics
    {
        obs::Counter *queries = nullptr;
        obs::Counter *cacheHits = nullptr;
        obs::Counter *attempts = nullptr;
        obs::Counter *retries = nullptr;
        obs::Counter *noCoverage = nullptr;
        obs::Counter *failed = nullptr;
        obs::Counter *spikes = nullptr;
        obs::Counter *degraded = nullptr;
        obs::Counter *stale = nullptr;
        obs::Counter *offline = nullptr;
        obs::Counter *queued = nullptr;
        obs::Counter *synced = nullptr;
        obs::Counter *corruptDelta = nullptr;
        obs::Counter *rejectedDelta = nullptr;
        obs::Histogram *latency[4] = {};
        obs::Histogram *energy[4] = {};
    };

    /** Bump a cached counter if metrics are attached. */
    static void
    bumpCtr(obs::Counter *c, u64 delta = 1)
    {
        if (c)
            c->bump(delta);
    }

    /** Record a component span if a tracer is attached. */
    void traceSpan(const char *name, const char *cat, SimTime start,
                   SimTime dur) const;

    /** Record the per-query umbrella span and histogram samples. */
    void finishQueryObs(const workload::PairRef &pair, ServePath path,
                        const QueryOutcome &out, SimTime t0);

    /** Append a device-power segment and charge energy. */
    void addSegment(QueryOutcome &out, const char *label, SimTime dur,
                    MilliWatts power) const;

    /**
     * Run the radio exchange with retry/backoff under the attached
     * fault plan. Appends trace segments to `out` and advances its
     * radio/backoff accounting. @return True once an attempt succeeds.
     */
    bool radioExchangeWithRetry(QueryOutcome &out, radio::RadioLink &radio,
                                SimTime start);

    DeviceConfig cfg_;
    std::unique_ptr<pc::nvm::FlashDevice> flash_;
    std::unique_ptr<pc::simfs::FlashStore> store_;
    std::unique_ptr<PocketSearch> ps_;
    Browser browser_;
    radio::RadioLink threeG_;
    radio::RadioLink edge_;
    radio::RadioLink wifi_;
    SimTime now_ = 0;
    u64 communityVersion_ = 0;
    u32 badDeltaStreak_ = 0;
    fault::FaultPlan *faults_ = nullptr;
    ResilienceStats resilience_;
    std::vector<workload::PairRef> missQueue_;
    obs::MetricRegistry *registry_ = nullptr;
    Metrics metrics_;
    obs::Tracer *tracer_ = nullptr;
    u32 traceTrack_ = 0;
    obs::FlightRecorder *recorder_ = nullptr;
    obs::TraceContext syncCtx_;
    obs::health::HealthAccountant *health_ = nullptr;
};

} // namespace pc::device

#endif // PC_DEVICE_MOBILE_DEVICE_H
