/**
 * @file
 * OS resource arbitration across pocket cloudlets (Section 7).
 *
 * "The operating system will need to limit memory consumption such
 * that enough memory is available to user data and applications" —
 * when the user installs apps or shoots video, the OS reclaims flash
 * from the cloudlets. The arbiter shrinks the least valuable content
 * first: cloudlets are ranked by hit-value density (how many local
 * hits each cached byte has been producing), and the low-density ones
 * give up storage before the high-density ones are touched.
 */

#ifndef PC_DEVICE_ARBITER_H
#define PC_DEVICE_ARBITER_H

#include <string>
#include <vector>

#include "core/cloudlet.h"
#include "util/types.h"

namespace pc::device {

/** One arbitration decision, for reporting. */
struct ArbitrationAction
{
    std::string cloudlet;
    Bytes before = 0;
    Bytes released = 0;
};

/** Outcome of one enforcement pass. */
struct ArbitrationResult
{
    Bytes totalBefore = 0;
    Bytes totalAfter = 0;
    std::vector<ArbitrationAction> actions;

    Bytes released() const { return totalBefore - totalAfter; }
};

/**
 * Budget enforcer over a set of attached cloudlets.
 */
class ResourceArbiter
{
  public:
    /** Attach a cloudlet (not owned; must outlive the arbiter). */
    void attach(core::Cloudlet &cloudlet);

    /** Total data bytes across attached cloudlets. */
    Bytes totalDataBytes() const;

    /** Total fast-memory index bytes across attached cloudlets. */
    Bytes totalIndexBytes() const;

    /**
     * Enforce a data budget: if the cloudlets exceed it, shrink the
     * lowest value-density cloudlets first until the total fits (or
     * nothing more can be released).
     */
    ArbitrationResult enforceDataBudget(Bytes budget);

    /** Attached cloudlets, in attach order. */
    const std::vector<core::Cloudlet *> &cloudlets() const
    {
        return cloudlets_;
    }

  private:
    /** Hits produced per cached byte; the shrink ordering key. */
    static double valueDensity(const core::Cloudlet &c);

    std::vector<core::Cloudlet *> cloudlets_;
};

} // namespace pc::device

#endif // PC_DEVICE_ARBITER_H
