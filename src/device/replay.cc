#include "device/replay.h"

#include "nvm/flash_device.h"
#include "simfs/flash_store.h"
#include "util/logging.h"

namespace pc::device {

ReplayDriver::ReplayDriver(const core::QueryUniverse &universe,
                           const CacheContents &contents,
                           const workload::PopulationConfig &pop)
    : universe_(universe), contents_(contents), pop_(pop)
{
}

UserReplayResult
ReplayDriver::replayUser(const UserProfile &profile,
                         const std::vector<StreamEvent> &events,
                         core::PocketSearch &ps) const
{
    UserReplayResult res;
    res.profile = profile;
    SimTime sink = 0;
    for (const auto &ev : events) {
        const bool hit = ps.containsPair(ev.pair);
        ++res.events;
        const bool nav = universe_.isNavigationalPair(ev.pair);
        if (hit) {
            ++res.hits;
            if (nav)
                ++res.navHits;
            else
                ++res.nonNavHits;
        }
        // Window accounting relative to the month start (events carry
        // absolute times; the month starts at the first event's window).
        const SimTime rel = ev.time % workload::kMonth;
        if (rel < workload::kWeek) {
            ++res.windowEvents[0];
            ++res.windowEvents[1];
            if (hit) {
                ++res.windowHits[0];
                ++res.windowHits[1];
            }
        } else if (rel < 2 * workload::kWeek) {
            ++res.windowEvents[1];
            if (hit)
                ++res.windowHits[1];
        }
        ++res.windowEvents[2];
        if (hit)
            ++res.windowHits[2];

        // The user clicks through; the cache learns (unless static).
        ps.recordClick(ev.pair, sink);
    }
    return res;
}

ReplayResult
ReplayDriver::run(const ReplayConfig &cfg) const
{
    ReplayResult out;
    workload::PopulationSampler sampler(pop_);
    Rng seeder(cfg.seed);

    for (int c = 0; c < 4; ++c) {
        const auto cls = UserClass(c);
        ClassReplayResult agg;
        agg.cls = cls;
        double sum_hit = 0.0, sum_w1 = 0.0, sum_w12 = 0.0;
        u64 nav_hits = 0, nonnav_hits = 0;

        for (u32 u = 0; u < cfg.usersPerClass; ++u) {
            Rng user_rng = seeder.fork();
            const UserProfile profile =
                sampler.sampleUserOfClass(user_rng, cls);
            // Evaluation users replay the month *after* the build
            // month: habits formed during the build month (epoch 0),
            // then churned by the new month's trends.
            workload::UserStream stream(universe_, profile,
                                        seeder.next(), /*epoch=*/0);
            stream.setEpoch(1);
            const auto events = stream.month(0);

            // Each user gets their own phone: flash + store + cache.
            pc::nvm::FlashConfig fc;
            fc.capacity = 64 * kMiB;
            pc::nvm::FlashDevice flash(fc);
            pc::simfs::FlashStore store(flash);
            core::PocketSearchConfig ps_cfg;
            ps_cfg.mode = cfg.mode;
            ps_cfg.lambda = cfg.lambda;
            core::PocketSearch ps(universe_, store, ps_cfg);
            SimTime sink = 0;
            ps.loadCommunity(contents_, sink);

            auto res = replayUser(profile, events, ps);
            sum_hit += res.hitRate();
            sum_w1 += res.windowHitRate(0);
            sum_w12 += res.windowHitRate(1);
            nav_hits += res.navHits;
            nonnav_hits += res.nonNavHits;
            out.users.push_back(std::move(res));
            ++agg.users;
        }

        if (agg.users) {
            agg.meanHitRate = sum_hit / double(agg.users);
            agg.meanWeek1HitRate = sum_w1 / double(agg.users);
            agg.meanWeeks12HitRate = sum_w12 / double(agg.users);
        }
        const u64 total_hits = nav_hits + nonnav_hits;
        if (total_hits) {
            agg.navHitShare = double(nav_hits) / double(total_hits);
            agg.nonNavHitShare = double(nonnav_hits) / double(total_hits);
        }
        out.classes[c] = agg;
    }

    double sum = 0.0;
    for (const auto &u : out.users)
        sum += u.hitRate();
    out.overallMeanHitRate =
        out.users.empty() ? 0.0 : sum / double(out.users.size());
    return out;
}

} // namespace pc::device
