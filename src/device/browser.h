/**
 * @file
 * Browser rendering model.
 *
 * Rendering dominates PocketSearch's hit-path response time: of the
 * 378 ms the prototype needs to serve a cached query, 361 ms (96.7%) is
 * the embedded browser laying out the results page (Table 4). Page
 * navigation adds the landing page's own download+render time (Table 5).
 */

#ifndef PC_DEVICE_BROWSER_H
#define PC_DEVICE_BROWSER_H

#include "util/types.h"

namespace pc::device {

/** Landing-page weight classes of Table 5. */
enum class PageWeight
{
    Lightweight, ///< ~15 s to download+render over 3G.
    Heavyweight, ///< ~30 s.
};

/** Rendering/processing time model (2010-era smartphone browser). */
struct BrowserConfig
{
    /** Render a search-results page (Table 4: 361 ms). */
    SimTime searchPageRender = fromMillis(361);
    /** Miscellaneous app overhead per query (Table 4: 7 ms). */
    SimTime miscOverhead = fromMillis(7);
    /** Full download+render of a lightweight landing page over 3G. */
    SimTime lightPageLoad = 15 * kSecond;
    /** Full download+render of a heavyweight landing page over 3G. */
    SimTime heavyPageLoad = 30 * kSecond;
    /** Extra CPU power drawn while rendering. */
    MilliWatts renderPower = 300.0;
};

/**
 * Stateless browser timing model.
 */
class Browser
{
  public:
    explicit Browser(const BrowserConfig &cfg = {}) : cfg_(cfg) {}

    /** Time to render a search results page. */
    SimTime renderSearchPage() const { return cfg_.searchPageRender; }

    /** Fixed per-query app overhead. */
    SimTime miscOverhead() const { return cfg_.miscOverhead; }

    /** Landing-page load time (download + render, over 3G). */
    SimTime
    pageLoad(PageWeight w) const
    {
        return w == PageWeight::Lightweight ? cfg_.lightPageLoad
                                            : cfg_.heavyPageLoad;
    }

    /** Configuration. */
    const BrowserConfig &config() const { return cfg_; }

  private:
    BrowserConfig cfg_;
};

} // namespace pc::device

#endif // PC_DEVICE_BROWSER_H
