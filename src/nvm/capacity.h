/**
 * @file
 * Smartphone NVM capacity projection (Figure 2) and pocket-cloudlet
 * storage sizing (Table 2).
 *
 * Figure 2 applies "different combinations of scaling and other
 * capacity-increasing techniques" from the Table 1 roadmap to the NVM
 * found in a 2010 high-end smartphone and plots the resulting capacity
 * evolution; the headline data point is ~1 TB for high-end phones by
 * 2018. Low-end phones are modelled at a 64:1 capacity ratio behind
 * high-end ones.
 */

#ifndef PC_NVM_CAPACITY_H
#define PC_NVM_CAPACITY_H

#include <string>
#include <vector>

#include "nvm/technology.h"
#include "util/types.h"

namespace pc::nvm {

/** Which capacity-increasing techniques a projection scenario applies. */
struct ScenarioFlags
{
    bool densityScaling = true; ///< Per-layer lithography scaling factor.
    bool chipStacking = false;  ///< Chips per package.
    bool cellStacking = false;  ///< 3D cell layers.
    bool multiLevelCells = false; ///< Bits per cell.

    /** Short display name, e.g. "scaling+chip+cell+mlc". */
    std::string name() const;
};

/** One projected point of Figure 2. */
struct CapacityPoint
{
    int year;
    Bytes highEnd; ///< Projected high-end smartphone NVM capacity.
    Bytes lowEnd;  ///< Projected low-end capacity (64:1 behind high-end).
};

/**
 * Capacity projection engine over a TechRoadmap.
 */
class CapacityProjection
{
  public:
    /**
     * @param roadmap Scaling roadmap (Table 1).
     * @param baselineHighEnd NVM in a 2010 high-end phone. The paper's
     *        numbers are consistent with 32 GB (x32 total multiplier
     *        2010 -> 2018 yields the quoted 1 TB).
     * @param lowEndRatio High-end to low-end capacity ratio (paper: 64).
     */
    explicit CapacityProjection(const TechRoadmap &roadmap,
                                Bytes baselineHighEnd = 32ull * kGiB,
                                unsigned lowEndRatio = 64);

    /** Capacity multiplier of `year` vs baseline under a scenario. */
    double multiplier(int year, const ScenarioFlags &flags) const;

    /** Project one year under a scenario. */
    CapacityPoint project(int year, const ScenarioFlags &flags) const;

    /** Project every roadmap year under a scenario (a Figure 2 series). */
    std::vector<CapacityPoint> series(const ScenarioFlags &flags) const;

    /** The four scenarios plotted in Figure 2, cumulative in technique. */
    static std::vector<ScenarioFlags> figure2Scenarios();

    /** First roadmap year in which high-end capacity reaches `target`. */
    int yearCapacityReaches(Bytes target, const ScenarioFlags &flags) const;

  private:
    const TechRoadmap &roadmap_;
    Bytes baselineHighEnd_;
    unsigned lowEndRatio_;
};

/** One row of Table 2: a cloudlet type and its unit item size. */
struct CloudletItemSpec
{
    std::string cloudlet; ///< e.g. "Web Search".
    std::string itemDesc; ///< e.g. "search result page".
    Bytes itemSize;       ///< Size of a single item.
};

/** The five cloudlet rows of Table 2. */
std::vector<CloudletItemSpec> table2Specs();

/** Items of the given size that fit in a storage budget. */
u64 itemsInBudget(Bytes budget, Bytes itemSize);

} // namespace pc::nvm

#endif // PC_NVM_CAPACITY_H
