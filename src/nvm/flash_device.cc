#include "nvm/flash_device.h"

#include "util/logging.h"

namespace pc::nvm {

FlashDevice::FlashDevice(const FlashConfig &cfg)
    : cfg_(cfg)
{
    pc_assert(cfg_.pageSize > 0, "flash page size must be positive");
    pc_assert(cfg_.pagesPerBlock > 0, "pages per block must be positive");
    pc_assert(cfg_.capacity % cfg_.pageSize == 0,
              "capacity must be page-aligned");
    const Bytes block_bytes = cfg_.pageSize * cfg_.pagesPerBlock;
    const u64 blocks = (cfg_.capacity + block_bytes - 1) / block_bytes;
    eraseCounts_.assign(blocks, 0);
}

void
FlashDevice::checkRange(Bytes addr, Bytes len) const
{
    pc_assert(addr + len <= cfg_.capacity,
              "flash access [", addr, ", ", addr + len,
              ") beyond capacity ", cfg_.capacity);
}

u64
FlashDevice::pagesSpanned(Bytes addr, Bytes len) const
{
    if (len == 0)
        return 0;
    const Bytes first = addr / cfg_.pageSize;
    const Bytes last = (addr + len - 1) / cfg_.pageSize;
    return last - first + 1;
}

SimTime
FlashDevice::read(Bytes addr, Bytes len)
{
    checkRange(addr, len);
    const u64 pages = pagesSpanned(addr, len);
    // Each touched page pays array access (tR); the bus transfers the
    // whole page, not just the requested bytes.
    const SimTime t = SimTime(pages) *
        (cfg_.readPageLatency + SimTime(cfg_.pageSize) * cfg_.busPerByte);
    pagesRead_ += pages;
    account(false, len, t, cfg_.activePower);
    return t;
}

SimTime
FlashDevice::write(Bytes addr, Bytes len)
{
    checkRange(addr, len);
    const u64 pages = pagesSpanned(addr, len);
    const SimTime t = SimTime(pages) *
        (cfg_.programPageLatency + SimTime(cfg_.pageSize) * cfg_.busPerByte);
    pagesProgrammed_ += pages;
    account(true, len, t, cfg_.activePower);
    return t;
}

SimTime
FlashDevice::eraseBlockAt(Bytes addr)
{
    checkRange(addr, 1);
    const Bytes block_bytes = cfg_.pageSize * cfg_.pagesPerBlock;
    const u64 block = addr / block_bytes;
    ++eraseCounts_.at(block);
    ++blocksErased_;
    account(true, 0, cfg_.eraseBlockLatency, cfg_.activePower);
    return cfg_.eraseBlockLatency;
}

u64
FlashDevice::blockEraseCount(u64 block) const
{
    return eraseCounts_.at(block);
}

u64
FlashDevice::maxWear() const
{
    u64 m = 0;
    for (u64 c : eraseCounts_)
        m = c > m ? c : m;
    return m;
}

} // namespace pc::nvm
