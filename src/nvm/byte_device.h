/**
 * @file
 * Byte-addressable memory device models: DRAM and PCM.
 *
 * These back the paper's Section 3.3 three-tier discussion: indexes live
 * in DRAM today; a PCM tier would make them persistent and instantly
 * available at boot (no index reload from NAND), at some access-latency
 * cost. Both are modelled as fixed per-access latency plus a per-byte
 * stream term.
 */

#ifndef PC_NVM_BYTE_DEVICE_H
#define PC_NVM_BYTE_DEVICE_H

#include "nvm/storage_device.h"

namespace pc::nvm {

/** Timing/energy of a byte-addressable tier. */
struct ByteDeviceConfig
{
    std::string name = "dram";
    Bytes capacity = 512 * kMiB;
    SimTime readAccessLatency = 50;   ///< ns, first-word latency.
    SimTime writeAccessLatency = 50;  ///< ns.
    SimTime perByte = 0;              ///< ns per streamed byte (0 => 10GB/s+).
    MilliWatts activePower = 100.0;
    bool nonVolatile = false;         ///< Survives power cycles?
};

/** DRAM-like defaults. */
ByteDeviceConfig dramConfig(Bytes capacity = 512 * kMiB);

/**
 * PCM-like defaults: non-volatile, ~3x slower reads than DRAM and much
 * slower writes, but vastly faster than NAND and byte-addressable.
 */
ByteDeviceConfig pcmConfig(Bytes capacity = 4 * kGiB);

/**
 * Byte-addressable device with uniform access timing.
 */
class ByteDevice : public StorageDevice
{
  public:
    explicit ByteDevice(const ByteDeviceConfig &cfg);

    std::string name() const override { return cfg_.name; }
    Bytes capacity() const override { return cfg_.capacity; }

    SimTime read(Bytes addr, Bytes len) override;
    SimTime write(Bytes addr, Bytes len) override;

    /** Whether contents survive a power cycle. */
    bool nonVolatile() const { return cfg_.nonVolatile; }

    /** Configuration. */
    const ByteDeviceConfig &config() const { return cfg_; }

  private:
    ByteDeviceConfig cfg_;
};

} // namespace pc::nvm

#endif // PC_NVM_BYTE_DEVICE_H
