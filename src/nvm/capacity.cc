#include "nvm/capacity.h"

#include <cmath>

#include "util/logging.h"

namespace pc::nvm {

std::string
ScenarioFlags::name() const
{
    std::string out;
    auto add = [&](bool on, const char *tag) {
        if (!on)
            return;
        if (!out.empty())
            out += '+';
        out += tag;
    };
    add(densityScaling, "scaling");
    add(chipStacking, "chip-stack");
    add(cellStacking, "cell-stack");
    add(multiLevelCells, "mlc");
    if (out.empty())
        out = "none";
    return out;
}

CapacityProjection::CapacityProjection(const TechRoadmap &roadmap,
                                       Bytes baselineHighEnd,
                                       unsigned lowEndRatio)
    : roadmap_(roadmap),
      baselineHighEnd_(baselineHighEnd),
      lowEndRatio_(lowEndRatio)
{
    pc_assert(baselineHighEnd_ > 0, "baseline capacity must be positive");
    pc_assert(lowEndRatio_ > 0, "low-end ratio must be positive");
}

double
CapacityProjection::multiplier(int year, const ScenarioFlags &flags) const
{
    const TechNode &base = roadmap_.baseline();
    const TechNode &node = roadmap_.nodeFor(year);
    double m = 1.0;
    if (flags.densityScaling)
        m *= double(node.scalingFactor) / double(base.scalingFactor);
    if (flags.chipStacking)
        m *= double(node.chipStack) / double(base.chipStack);
    if (flags.cellStacking)
        m *= double(node.cellLayers) / double(base.cellLayers);
    if (flags.multiLevelCells)
        m *= double(node.bitsPerCell) / double(base.bitsPerCell);
    return m;
}

CapacityPoint
CapacityProjection::project(int year, const ScenarioFlags &flags) const
{
    const double m = multiplier(year, flags);
    CapacityPoint pt;
    pt.year = year;
    pt.highEnd = Bytes(std::llround(double(baselineHighEnd_) * m));
    pt.lowEnd = pt.highEnd / lowEndRatio_;
    return pt;
}

std::vector<CapacityPoint>
CapacityProjection::series(const ScenarioFlags &flags) const
{
    std::vector<CapacityPoint> out;
    out.reserve(roadmap_.nodes().size());
    for (const auto &node : roadmap_.nodes())
        out.push_back(project(node.year, flags));
    return out;
}

std::vector<ScenarioFlags>
CapacityProjection::figure2Scenarios()
{
    return {
        {true, false, false, false},
        {true, true, false, false},
        {true, true, true, false},
        {true, true, true, true},
    };
}

int
CapacityProjection::yearCapacityReaches(Bytes target,
                                        const ScenarioFlags &flags) const
{
    for (const auto &node : roadmap_.nodes()) {
        if (project(node.year, flags).highEnd >= target)
            return node.year;
    }
    return -1;
}

std::vector<CloudletItemSpec>
table2Specs()
{
    // Table 2, verbatim: item granularity per pocket cloudlet.
    return {
        {"Web Search", "search result page", 100 * kKiB},
        {"Mobile Ads", "ad banner", 5 * kKiB},
        {"Yellow Business", "map tile with business info", 5 * kKiB},
        {"Web Content", "full web page (www.cnn.com)",
         Bytes(1.5 * double(kMiB))},
        {"Mapping", "128x128 pixels map tile", 5 * kKiB},
    };
}

u64
itemsInBudget(Bytes budget, Bytes itemSize)
{
    pc_assert(itemSize > 0, "item size must be positive");
    return budget / itemSize;
}

} // namespace pc::nvm
