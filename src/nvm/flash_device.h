/**
 * @file
 * NAND flash device timing model.
 *
 * Models page-granular reads/programs and block-granular erases with
 * fixed per-operation latencies plus a bus transfer term. Accesses that
 * touch N pages cost N page operations — this is the effect behind the
 * paper's Section 5.2.2 analysis: a 500-byte search-result record still
 * costs a whole page read, and small files still occupy whole allocation
 * blocks.
 */

#ifndef PC_NVM_FLASH_DEVICE_H
#define PC_NVM_FLASH_DEVICE_H

#include <vector>

#include "nvm/storage_device.h"

namespace pc::nvm {

/** Geometry and timing of a NAND part. Defaults resemble 2010-era SLC/MLC. */
struct FlashConfig
{
    Bytes pageSize = 4 * kKiB;    ///< Read/program unit.
    u32 pagesPerBlock = 64;       ///< Erase unit, in pages.
    Bytes capacity = 1 * kGiB;    ///< Usable capacity.
    SimTime readPageLatency = 60 * kMicrosecond;   ///< tR.
    SimTime programPageLatency = 250 * kMicrosecond; ///< tPROG.
    SimTime eraseBlockLatency = 2 * kMillisecond; ///< tBERS.
    /** Bus transfer time per byte (50 MB/s bus => 20 ns/B). */
    SimTime busPerByte = 20;
    MilliWatts activePower = 30.0; ///< Power while busy.
};

/**
 * Timed NAND flash device with wear accounting.
 */
class FlashDevice : public StorageDevice
{
  public:
    explicit FlashDevice(const FlashConfig &cfg = FlashConfig{});

    std::string name() const override { return "nand-flash"; }
    Bytes capacity() const override { return cfg_.capacity; }

    SimTime read(Bytes addr, Bytes len) override;
    SimTime write(Bytes addr, Bytes len) override;

    /** Model erasing the block containing byte offset `addr`. */
    SimTime eraseBlockAt(Bytes addr);

    /** Geometry/timing configuration. */
    const FlashConfig &config() const { return cfg_; }

    /** Pages touched by a [addr, addr+len) byte range. */
    u64 pagesSpanned(Bytes addr, Bytes len) const;

    /** Number of erases a block has seen (wear). */
    u64 blockEraseCount(u64 block) const;

    /** Highest per-block erase count (wear skew indicator). */
    u64 maxWear() const;

    /** Total pages read since construction. */
    u64 pagesRead() const { return pagesRead_; }
    /** Total pages programmed since construction. */
    u64 pagesProgrammed() const { return pagesProgrammed_; }
    /** Total blocks erased since construction. */
    u64 blocksErased() const { return blocksErased_; }

  private:
    void checkRange(Bytes addr, Bytes len) const;

    FlashConfig cfg_;
    std::vector<u64> eraseCounts_;
    u64 pagesRead_ = 0;
    u64 pagesProgrammed_ = 0;
    u64 blocksErased_ = 0;
};

} // namespace pc::nvm

#endif // PC_NVM_FLASH_DEVICE_H
