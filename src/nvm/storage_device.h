/**
 * @file
 * Common interface for timed storage/memory device models.
 *
 * Devices do not hold payload bytes — file contents live in the simfs
 * layer — they model *timing, energy and geometry* of accesses, which is
 * what the paper's storage-architecture experiments (Figure 12, Table 4)
 * depend on.
 */

#ifndef PC_NVM_STORAGE_DEVICE_H
#define PC_NVM_STORAGE_DEVICE_H

#include <string>

#include "util/types.h"

namespace pc::nvm {

/** Cumulative access statistics for a device. */
struct DeviceStats
{
    u64 readOps = 0;
    u64 writeOps = 0;
    Bytes bytesRead = 0;
    Bytes bytesWritten = 0;
    SimTime busyTime = 0;
    MicroJoules energy = 0;
};

/**
 * Abstract timed storage device. read()/write() return the simulated
 * latency of the access and account energy internally.
 */
class StorageDevice
{
  public:
    virtual ~StorageDevice() = default;

    /** Device display name. */
    virtual std::string name() const = 0;

    /** Usable capacity. */
    virtual Bytes capacity() const = 0;

    /**
     * Model a read of `len` bytes starting at byte offset `addr`.
     * @return Simulated latency of the access.
     */
    virtual SimTime read(Bytes addr, Bytes len) = 0;

    /**
     * Model a write of `len` bytes starting at byte offset `addr`.
     * @return Simulated latency of the access.
     */
    virtual SimTime write(Bytes addr, Bytes len) = 0;

    /** Cumulative statistics. */
    const DeviceStats &stats() const { return stats_; }

    /** Reset statistics (capacity/contents untouched). */
    void resetStats() { stats_ = DeviceStats{}; }

  protected:
    /** Fold one access into the stats. */
    void
    account(bool is_write, Bytes len, SimTime t, MilliWatts power)
    {
        if (is_write) {
            ++stats_.writeOps;
            stats_.bytesWritten += len;
        } else {
            ++stats_.readOps;
            stats_.bytesRead += len;
        }
        stats_.busyTime += t;
        stats_.energy += energyOver(power, t);
    }

    DeviceStats stats_;
};

} // namespace pc::nvm

#endif // PC_NVM_STORAGE_DEVICE_H
