/**
 * @file
 * NVM technology scaling model (Table 1 of the paper).
 *
 * The paper projects, per two-year step from 2010 to 2026: the process
 * node, a per-layer density scaling factor, the number of chips in a
 * stack, the number of cell layers per chip (3D cell stacking), and the
 * number of bits per cell. Flash is assumed to dominate until 2016/2018,
 * after which a resistive/magneto-resistive technology takes over.
 */

#ifndef PC_NVM_TECHNOLOGY_H
#define PC_NVM_TECHNOLOGY_H

#include <string>
#include <vector>

#include "util/types.h"

namespace pc::nvm {

/** NVM family used in a given generation. */
enum class TechFamily
{
    Flash,    ///< Charge-based NAND flash (through ~2016).
    OtherNvm, ///< Post-flash resistive/magneto-resistive NVM (2018+).
};

/** One column of Table 1: the projection for a given year. */
struct TechNode
{
    int year;            ///< Calendar year of the generation.
    int techNm;          ///< Process feature size, nm.
    int scalingFactor;   ///< Per-layer density scaling vs the 2010 node.
    int chipStack;       ///< Chips per package (chip stacking).
    int cellLayers;      ///< 3D cell layers per chip (cell stacking).
    int bitsPerCell;     ///< Logic levels stored per cell.
    TechFamily family;   ///< Flash vs post-flash technology.

    /** Human-readable family name. */
    std::string familyName() const;

    /**
     * Total capacity multiplier of this node relative to the 2010
     * baseline when all four techniques are applied.
     */
    double fullMultiplier(const TechNode &base) const;
};

/**
 * The scaling roadmap: exactly the nine generations of Table 1, plus
 * interpolation helpers used by the capacity projection.
 */
class TechRoadmap
{
  public:
    /** Construct the paper's Table 1 roadmap. */
    TechRoadmap();

    /** All generations, ascending by year. */
    const std::vector<TechNode> &nodes() const { return nodes_; }

    /** The 2010 baseline generation. */
    const TechNode &baseline() const { return nodes_.front(); }

    /**
     * The generation in effect in a given year (the latest node with
     * node.year <= year). @pre year >= baseline year.
     */
    const TechNode &nodeFor(int year) const;

    /** First year covered. */
    int firstYear() const { return nodes_.front().year; }
    /** Last year covered. */
    int lastYear() const { return nodes_.back().year; }

  private:
    std::vector<TechNode> nodes_;
};

} // namespace pc::nvm

#endif // PC_NVM_TECHNOLOGY_H
