#include "nvm/technology.h"

#include "util/logging.h"

namespace pc::nvm {

std::string
TechNode::familyName() const
{
    return family == TechFamily::Flash ? "Flash" : "Other NVM";
}

double
TechNode::fullMultiplier(const TechNode &base) const
{
    // Capacity scales with per-layer density, chips per package, cell
    // layers per chip, and bits per cell, each relative to the baseline.
    return (double(scalingFactor) / double(base.scalingFactor)) *
           (double(chipStack) / double(base.chipStack)) *
           (double(cellLayers) / double(base.cellLayers)) *
           (double(bitsPerCell) / double(base.bitsPerCell));
}

TechRoadmap::TechRoadmap()
{
    // Table 1 of the paper, verbatim. Flash dominates through 2016; the
    // 2018+ columns assume a post-flash NVM (PCM/RRAM/STT-MRAM class).
    nodes_ = {
        //   year  nm  scale stack layers bits  family
        {2010, 32, 1, 4, 1, 2, TechFamily::Flash},
        {2012, 22, 2, 4, 1, 3, TechFamily::Flash},
        {2014, 16, 4, 6, 1, 2, TechFamily::Flash},
        {2016, 11, 8, 6, 2, 2, TechFamily::Flash},
        {2018, 11, 8, 8, 2, 2, TechFamily::OtherNvm},
        {2020, 8, 16, 8, 4, 1, TechFamily::OtherNvm},
        {2022, 5, 32, 12, 4, 1, TechFamily::OtherNvm},
        {2024, 5, 32, 12, 8, 1, TechFamily::OtherNvm},
        {2026, 5, 32, 16, 8, 1, TechFamily::OtherNvm},
    };
}

const TechNode &
TechRoadmap::nodeFor(int year) const
{
    pc_assert(year >= nodes_.front().year,
              "year ", year, " precedes the roadmap");
    const TechNode *best = &nodes_.front();
    for (const auto &n : nodes_) {
        if (n.year <= year)
            best = &n;
        else
            break;
    }
    return *best;
}

} // namespace pc::nvm
