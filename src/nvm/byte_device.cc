#include "nvm/byte_device.h"

#include "util/logging.h"

namespace pc::nvm {

ByteDeviceConfig
dramConfig(Bytes capacity)
{
    ByteDeviceConfig cfg;
    cfg.name = "dram";
    cfg.capacity = capacity;
    cfg.readAccessLatency = 50;
    cfg.writeAccessLatency = 50;
    cfg.perByte = 0;
    cfg.activePower = 100.0;
    cfg.nonVolatile = false;
    return cfg;
}

ByteDeviceConfig
pcmConfig(Bytes capacity)
{
    ByteDeviceConfig cfg;
    cfg.name = "pcm";
    cfg.capacity = capacity;
    cfg.readAccessLatency = 150;   // ~3x DRAM read.
    cfg.writeAccessLatency = 1000; // PCM writes are slow (SET/RESET).
    cfg.perByte = 1;
    cfg.activePower = 60.0;
    cfg.nonVolatile = true;
    return cfg;
}

ByteDevice::ByteDevice(const ByteDeviceConfig &cfg)
    : cfg_(cfg)
{
    pc_assert(cfg_.capacity > 0, "byte device needs positive capacity");
}

SimTime
ByteDevice::read(Bytes addr, Bytes len)
{
    pc_assert(addr + len <= cfg_.capacity, "read beyond ", cfg_.name,
              " capacity");
    const SimTime t = cfg_.readAccessLatency + SimTime(len) * cfg_.perByte;
    account(false, len, t, cfg_.activePower);
    return t;
}

SimTime
ByteDevice::write(Bytes addr, Bytes len)
{
    pc_assert(addr + len <= cfg_.capacity, "write beyond ", cfg_.name,
              " capacity");
    const SimTime t = cfg_.writeAccessLatency + SimTime(len) * cfg_.perByte;
    account(true, len, t, cfg_.activePower);
    return t;
}

} // namespace pc::nvm
