#include "fault/fault_plan.h"

#include <algorithm>

#include "util/logging.h"

namespace pc::fault {

FaultPlan::FaultPlan(const FaultConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed)
{
    const auto &r = cfg_.radio;
    pc_assert(r.exchangeFailureRate >= 0.0 && r.exchangeFailureRate <= 1.0,
              "exchange failure rate must be a probability");
    pc_assert(r.outageShare >= 0.0 && r.outageShare < 1.0,
              "outage share must be in [0, 1)");
    pc_assert(r.latencySpikeRate >= 0.0 && r.latencySpikeRate <= 1.0,
              "latency spike rate must be a probability");
    pc_assert(r.latencySpikeFactor >= 1.0,
              "a latency spike cannot speed the exchange up");
    pc_assert(r.payloadCorruptRate >= 0.0 && r.payloadCorruptRate <= 1.0,
              "payload corruption rate must be a probability");

    outageEnabled_ = r.outageShare > 0.0 && r.meanOutageDuration > 0;
    if (outageEnabled_) {
        // Alternating exponential up/down intervals whose means give the
        // configured long-run outage share.
        meanUptime_ = SimTime(double(r.meanOutageDuration) *
                              (1.0 - r.outageShare) / r.outageShare);
        inOutage_ = false;
        nextTransition_ = SimTime(rng_.exponential(double(meanUptime_)));
    }
}

void
FaultPlan::advanceOutageSchedule(SimTime now)
{
    while (now >= nextTransition_) {
        inOutage_ = !inOutage_;
        const double mean = inOutage_
            ? double(cfg_.radio.meanOutageDuration)
            : double(meanUptime_);
        // Outages shorter than 1 unit would stall the schedule; clamp.
        nextTransition_ +=
            std::max<SimTime>(SimTime(rng_.exponential(mean)), 1);
    }
}

bool
FaultPlan::inOutage(SimTime now)
{
    if (!outageEnabled_)
        return false;
    advanceOutageSchedule(now);
    return inOutage_;
}

SimTime
FaultPlan::outageEnd(SimTime now)
{
    if (!inOutage(now))
        return now;
    return nextTransition_;
}

bool
FaultPlan::drawExchangeFailure()
{
    if (cfg_.radio.exchangeFailureRate <= 0.0)
        return false;
    const bool fail = rng_.chance(cfg_.radio.exchangeFailureRate);
    if (fail)
        ++stats_.exchangeFailures;
    return fail;
}

double
FaultPlan::drawFailurePoint()
{
    // Open interval: a failure at exactly 0 or 1 degenerates into
    // "never started" / "actually succeeded".
    return 0.05 + 0.9 * rng_.uniform();
}

bool
FaultPlan::drawLatencySpike()
{
    if (cfg_.radio.latencySpikeRate <= 0.0)
        return false;
    const bool spike = rng_.chance(cfg_.radio.latencySpikeRate);
    if (spike)
        ++stats_.latencySpikes;
    return spike;
}

bool
FaultPlan::maybeCorruptPayload(std::string &payload)
{
    if (cfg_.radio.payloadCorruptRate <= 0.0 || payload.empty())
        return false;
    if (!rng_.chance(cfg_.radio.payloadCorruptRate))
        return false;
    const u64 bit = rng_.below(u64(payload.size()) * 8);
    payload[bit / 8] =
        char(u8(payload[bit / 8]) ^ (1u << (bit % 8)));
    ++stats_.payloadCorruptions;
    return true;
}

double
FaultPlan::jitter(double frac)
{
    if (frac <= 0.0)
        return 1.0;
    return rng_.uniform(1.0 - frac, 1.0 + frac);
}

void
FaultPlan::armCrashAfterBytes(Bytes bytes)
{
    pc_assert(!powerLost_, "cannot arm a crash while the power is out");
    crashArmed_ = true;
    crashBudget_ = bytes;
}

Bytes
FaultPlan::programBudget(Bytes want)
{
    if (powerLost_)
        return 0;
    if (!crashArmed_)
        return want;
    if (want <= crashBudget_) {
        crashBudget_ -= want;
        return want;
    }
    const Bytes granted = crashBudget_;
    crashBudget_ = 0;
    crashArmed_ = false;
    powerLost_ = true;
    ++stats_.crashes;
    return granted;
}

void
FaultPlan::reboot()
{
    crashArmed_ = false;
    powerLost_ = false;
    crashBudget_ = 0;
}

bool
FaultPlan::maybeFlipBit(std::string &buf, Bytes from, Bytes len,
                        u64 blockErases)
{
    const double per_kilo = cfg_.storage.bitFlipPerReadPerKiloErase;
    if (per_kilo <= 0.0 || len == 0 || blockErases == 0)
        return false;
    const double p =
        std::min(1.0, per_kilo * double(blockErases) / 1000.0);
    if (!rng_.chance(p))
        return false;
    pc_assert(from + len <= buf.size(), "flip range beyond buffer");
    const u64 bit = rng_.below(len * 8);
    buf[from + bit / 8] = char(u8(buf[from + bit / 8]) ^ (1u << (bit % 8)));
    ++stats_.bitFlips;
    return true;
}

CounterBag
FaultPlan::toCounters() const
{
    CounterBag bag;
    bag.set("fault.outage_attempts", stats_.outageAttempts);
    bag.set("fault.exchange_failures", stats_.exchangeFailures);
    bag.set("fault.latency_spikes", stats_.latencySpikes);
    bag.set("fault.payload_corruptions", stats_.payloadCorruptions);
    bag.set("fault.bit_flips", stats_.bitFlips);
    bag.set("fault.crashes", stats_.crashes);
    return bag;
}

void
FaultPlan::publishMetrics(obs::MetricRegistry &reg) const
{
    reg.importCounters(toCounters());
}

} // namespace pc::fault
