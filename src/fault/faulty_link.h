/**
 * @file
 * Fault-injecting wrapper around a RadioLink.
 *
 * Models one exchange *attempt* under a FaultPlan. Three things can go
 * wrong relative to the perfect link:
 *
 *  - no coverage: the attempt never connects; the radio burns the
 *    signal-search probe and reports failure without touching the
 *    link's tail state;
 *  - mid-exchange failure: the exchange runs to a drawn failure point,
 *    stalls while the stack times out, then dies — the partial energy,
 *    the stall, and the post-attempt tail are all charged;
 *  - congestion spike: the exchange succeeds but its pre-tail latency
 *    is multiplied by the configured factor.
 *
 * With no plan attached (or a plan with all rates zero) an attempt is
 * byte-identical to RadioLink::request, so fault-free experiments are
 * unchanged.
 */

#ifndef PC_FAULT_FAULTY_LINK_H
#define PC_FAULT_FAULTY_LINK_H

#include "fault/fault_plan.h"
#include "radio/link.h"

namespace pc::fault {

/** Outcome of one exchange attempt under faults. */
struct ExchangeOutcome
{
    bool ok = true;            ///< Response fully received.
    bool noCoverage = false;   ///< Failed: started inside an outage.
    bool failed = false;       ///< Failed: died mid-exchange.
    bool latencySpike = false; ///< Succeeded, but congested.
    /** What the radio actually did (partial timeline on failure). */
    radio::TransferResult xfer;
};

/**
 * A RadioLink filtered through a FaultPlan.
 */
class FaultyLink
{
  public:
    /**
     * @param link Underlying perfect link (state is shared; a device
     *        can wrap the same link repeatedly).
     * @param plan Fault schedule; nullptr injects nothing.
     */
    FaultyLink(radio::RadioLink &link, FaultPlan *plan = nullptr)
        : link_(link), plan_(plan)
    {
    }

    /** Model one exchange attempt at `now`. */
    ExchangeOutcome attempt(SimTime now, Bytes uplinkBytes,
                            Bytes downlinkBytes, SimTime serverTime);

    /** The wrapped link. */
    radio::RadioLink &link() { return link_; }

    /** The plan (may be nullptr). */
    FaultPlan *plan() { return plan_; }

  private:
    radio::RadioLink &link_;
    FaultPlan *plan_;
};

} // namespace pc::fault

#endif // PC_FAULT_FAULTY_LINK_H
