/**
 * @file
 * Seeded, deterministic fault injection for the radio and storage
 * models.
 *
 * The paper's argument is that the network is the slow, unreliable,
 * expensive part of mobile search (Sections 1, 6.1) — yet a perfect
 * RadioLink and a never-corrupting flash model cannot exercise any of
 * the behaviours that make a pocket cloudlet worth having when things
 * go wrong. A FaultPlan is the single source of injected adversity:
 *
 *  - coverage outages: alternating up/down intervals with exponential
 *    durations calibrated to a long-run outage share (subway tunnels,
 *    dead zones, airplane mode);
 *  - per-exchange failures: an exchange starts and dies mid-flight
 *    (dropped bearer, server 5xx, TCP reset), detected after a stall;
 *  - latency spikes: congestion multiplies an exchange's latency;
 *  - storage crashes: power dies after an armed number of payload
 *    bytes have been programmed, leaving torn files behind;
 *  - wear-correlated bit flips: reads of heavily erased blocks flip a
 *    bit with probability proportional to the block's erase count.
 *
 * Every draw comes from one seeded Rng, so a fixed seed reproduces an
 * entire faulty experiment bit for bit, and a disabled plan (all rates
 * zero) injects nothing and perturbs no existing numbers. The plan
 * also counts every fault it injects so experiments can prove that
 * retry/degradation counters account for all of them.
 */

#ifndef PC_FAULT_FAULT_PLAN_H
#define PC_FAULT_FAULT_PLAN_H

#include <string>

#include "obs/metrics.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/types.h"

namespace pc::fault {

/** Radio-side fault rates and shapes. */
struct RadioFaultConfig
{
    /** Probability that one exchange attempt dies mid-flight. */
    double exchangeFailureRate = 0.0;
    /** Long-run fraction of time spent without coverage. */
    double outageShare = 0.0;
    /** Mean duration of one coverage outage. */
    SimTime meanOutageDuration = 45 * kSecond;
    /** Probability that a successful exchange hits congestion. */
    double latencySpikeRate = 0.0;
    /**
     * Probability that a delivered downlink payload suffers a
     * single-bit flip (deep-fade demodulation error, buggy middlebox).
     * The exchange still reports success — only an integrity check on
     * the payload can catch it. 0 disables corruption.
     */
    double payloadCorruptRate = 0.0;
    /** Latency multiplier applied by a congestion spike. */
    double latencySpikeFactor = 4.0;
    /** Time the radio spends discovering there is no signal. */
    SimTime noCoverageProbe = fromMillis(800);
    /** Stall before a dead exchange is reported as failed. */
    SimTime failureStall = fromMillis(1500);
};

/** Storage-side fault rates. */
struct StorageFaultConfig
{
    /**
     * Probability that one read chunk suffers a single-bit flip, per
     * 1000 erases of the block it lives in (wear-correlated retention
     * loss). 0 disables flips.
     */
    double bitFlipPerReadPerKiloErase = 0.0;
};

/** Full fault-injection configuration. */
struct FaultConfig
{
    u64 seed = 1;
    RadioFaultConfig radio{};
    StorageFaultConfig storage{};
};

/** Counts of faults actually injected (ground truth for experiments). */
struct InjectedStats
{
    u64 outageAttempts = 0;    ///< Exchange attempts begun with no coverage.
    u64 exchangeFailures = 0;  ///< Exchanges killed mid-flight.
    u64 latencySpikes = 0;     ///< Exchanges slowed by congestion.
    u64 payloadCorruptions = 0; ///< Delivered payloads with a flipped bit.
    u64 bitFlips = 0;          ///< Bits flipped on storage reads.
    u64 crashes = 0;           ///< Power-loss events fired.
};

/**
 * One deterministic schedule of radio and storage faults.
 *
 * A plan is attached to at most one device/store pair: draws are
 * consumed in call order, so sharing a plan between two devices would
 * entangle their fault streams (still deterministic, but no longer
 * independently reproducible).
 */
class FaultPlan
{
  public:
    explicit FaultPlan(const FaultConfig &cfg = {});

    /** Configuration. */
    const FaultConfig &config() const { return cfg_; }

    // -- Radio faults -----------------------------------------------------

    /**
     * Is the device inside a coverage outage at `now`? The outage
     * schedule advances lazily; query times must be nondecreasing
     * (simulated clocks only move forward).
     */
    bool inOutage(SimTime now);

    /** End of the outage containing `now`; `now` itself if covered. */
    SimTime outageEnd(SimTime now);

    /** Draw: does this exchange attempt die mid-flight? (counted) */
    bool drawExchangeFailure();

    /** Draw: where in the exchange the failure hits, in (0, 1). */
    double drawFailurePoint();

    /** Draw: does this successful exchange hit a congestion spike? */
    bool drawLatencySpike();

    /**
     * Multiplicative jitter in [1-frac, 1+frac] for retry backoff.
     * Deterministic under the plan's seed.
     */
    double jitter(double frac);

    /**
     * In-flight corruption: with the configured per-delivery rate,
     * flip one uniformly chosen bit of the payload (counted). A
     * disabled rate consumes no randomness, so enabling corruption in
     * one experiment cannot perturb another's fault stream.
     * @return True if a bit was flipped.
     */
    bool maybeCorruptPayload(std::string &payload);

    /** Note an exchange attempt made during an outage (counted). */
    void noteOutageAttempt() { ++stats_.outageAttempts; }

    // -- Storage faults ---------------------------------------------------

    /**
     * Arm a power-loss crash: the supply dies after `bytes` more
     * payload bytes have been programmed through the attached store.
     */
    void armCrashAfterBytes(Bytes bytes);

    /** True once an armed crash has fired; writes are dead until reboot. */
    bool powerLost() const { return powerLost_; }

    /**
     * Consume crash budget for a program of `want` bytes; returns how
     * many bytes actually commit before the power dies (normally all
     * of them). Fires the crash, once, when the budget runs out.
     */
    Bytes programBudget(Bytes want);

    /** Power back on: clear the crash state and disarm. */
    void reboot();

    /**
     * Wear-correlated bit flip: with the configured per-kilo-erase
     * probability scaled by `blockErases`, flip one uniformly chosen
     * bit inside buf[from, from+len). Returns true if a bit flipped.
     */
    bool maybeFlipBit(std::string &buf, Bytes from, Bytes len,
                      u64 blockErases);

    // -- Observability ----------------------------------------------------

    /** Faults injected so far. */
    const InjectedStats &stats() const { return stats_; }

    /**
     * Raw RNG draws consumed so far. Draw-neutrality gate: a feature
     * that must not perturb the fault stream (e.g. trace recording)
     * leaves this count unchanged (bench_trace_overhead enforces it).
     */
    u64 rngDraws() const { return rng_.draws(); }

    /** Injected-fault counters as a mergeable bag. */
    CounterBag toCounters() const;

    /**
     * Fold the injected-fault ground truth into a registry (bumps the
     * "fault.*" counters by current values). Call once per experiment
     * phase — typically right before snapshotting.
     */
    void publishMetrics(obs::MetricRegistry &reg) const;

  private:
    /** Advance the outage schedule so it covers `now`. */
    void advanceOutageSchedule(SimTime now);

    FaultConfig cfg_;
    Rng rng_;
    InjectedStats stats_;

    // Outage schedule state (lazily generated forward).
    bool outageEnabled_ = false;
    bool inOutage_ = false;
    SimTime nextTransition_ = 0;
    SimTime meanUptime_ = 0;

    // Crash state.
    bool crashArmed_ = false;
    bool powerLost_ = false;
    Bytes crashBudget_ = 0;
};

} // namespace pc::fault

#endif // PC_FAULT_FAULT_PLAN_H
