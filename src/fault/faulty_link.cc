#include "fault/faulty_link.h"

#include <cmath>

#include "util/logging.h"

namespace pc::fault {

namespace {

/** Sum of the latency-counting (pre-tail) segment durations. */
SimTime
preTailLatency(const radio::TransferResult &res)
{
    SimTime t = 0;
    for (const auto &seg : res.segments) {
        if (seg.label != "tail")
            t += seg.duration;
    }
    return t;
}

} // namespace

ExchangeOutcome
FaultyLink::attempt(SimTime now, Bytes uplinkBytes, Bytes downlinkBytes,
                    SimTime serverTime)
{
    ExchangeOutcome out;

    if (plan_ && plan_->inOutage(now)) {
        // No signal: the radio searches, finds nothing, gives up. The
        // link never connects, so its tail/wakeup state is untouched.
        out.ok = false;
        out.noCoverage = true;
        plan_->noteOutageAttempt();
        const auto &cfg = link_.config();
        const SimTime probe = plan_->config().radio.noCoverageProbe;
        if (probe > 0) {
            out.xfer.segments.push_back(
                {"no-coverage", probe, cfg.wakeupPower});
            out.xfer.latency = probe;
            out.xfer.radioEnergy = energyOver(cfg.wakeupPower, probe);
        }
        return out;
    }

    radio::TransferResult full =
        link_.model(now, uplinkBytes, downlinkBytes, serverTime);

    if (plan_ && plan_->drawExchangeFailure()) {
        // Truncate the exchange at the drawn failure point, stall while
        // the stack notices, then drop into the tail.
        out.ok = false;
        out.failed = true;
        const auto &cfg = link_.config();
        const SimTime cut = SimTime(
            std::llround(double(preTailLatency(full)) *
                         plan_->drawFailurePoint()));
        radio::TransferResult part;
        SimTime used = 0;
        for (const auto &seg : full.segments) {
            if (seg.label == "tail")
                break;
            const SimTime take =
                std::min<SimTime>(seg.duration, cut - used);
            if (take <= 0)
                break;
            part.segments.push_back({seg.label, take, seg.power});
            part.latency += take;
            part.radioEnergy += energyOver(seg.power, take);
            used += take;
        }
        const SimTime stall = plan_->config().radio.failureStall;
        if (stall > 0) {
            part.segments.push_back({"stall", stall, cfg.activePower});
            part.latency += stall;
            part.radioEnergy += energyOver(cfg.activePower, stall);
        }
        if (cfg.tailDuration > 0) {
            part.segments.push_back(
                {"tail", cfg.tailDuration, cfg.tailPower});
            part.radioEnergy +=
                energyOver(cfg.tailPower, cfg.tailDuration);
        }
        link_.commit(now, part);
        out.xfer = std::move(part);
        return out;
    }

    if (plan_ && plan_->drawLatencySpike()) {
        // Congestion: stretch the exchange by (factor - 1) x its
        // pre-tail latency at connected-idle power, before the tail.
        out.latencySpike = true;
        const auto &cfg = link_.config();
        const double factor = plan_->config().radio.latencySpikeFactor;
        const SimTime extra = SimTime(
            std::llround(double(preTailLatency(full)) * (factor - 1.0)));
        if (extra > 0) {
            radio::PowerSegment congestion{"congestion", extra,
                                           cfg.tailPower};
            // Keep the tail last in the timeline.
            auto it = full.segments.end();
            if (!full.segments.empty() &&
                full.segments.back().label == "tail")
                --it;
            full.segments.insert(it, congestion);
            full.latency += extra;
            full.radioEnergy += energyOver(cfg.tailPower, extra);
        }
    }

    link_.commit(now, full);
    out.xfer = std::move(full);
    return out;
}

} // namespace pc::fault
