#include "harness/fleet.h"

#include "util/logging.h"

namespace pc::harness {

std::string
userClassKey(workload::UserClass cls)
{
    switch (cls) {
      case workload::UserClass::Low: return "low";
      case workload::UserClass::Medium: return "medium";
      case workload::UserClass::High: return "high";
      case workload::UserClass::Extreme: return "extreme";
    }
    return "unknown";
}

fault::FaultConfig
defaultOutageFaults()
{
    fault::FaultConfig f;
    f.radio.outageShare = 0.45;
    f.radio.meanOutageDuration = 10ll * 60 * kSecond;
    f.radio.exchangeFailureRate = 0.05;
    f.radio.latencySpikeRate = 0.10;
    return f;
}

FleetRunResult
runFleet(const Workbench &wb, const FleetRunConfig &cfg,
         obs::FleetCollector &collector)
{
    pc_assert(cfg.devices > 0, "runFleet: need at least one device");
    pc_assert(cfg.months > 0, "runFleet: need at least one month");

    workload::PopulationSampler sampler(wb.population());
    const auto profiles = sampler.samplePopulation(cfg.devices);

    FleetRunResult result;
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        const workload::UserProfile &profile = profiles[i];

        device::MobileDevice dev(wb.universe(), cfg.device);
        if (!cfg.cloud)
            dev.installCommunityCache(wb.communityCache());
        obs::MetricRegistry reg;
        dev.attachMetrics(&reg);

        // Per-device derived seeds: device index decorrelates streams
        // and fault schedules, the run seed shifts the whole fleet.
        const u64 devSeed = cfg.seed * 1000003ull + u64(i) * 7919ull;
        workload::UserStream stream(wb.universe(), profile, devSeed);
        fault::FaultConfig faultCfg = cfg.outageFaults;
        faultCfg.seed = devSeed + 1;
        fault::FaultPlan faults(faultCfg);

        collector.beginDevice(userClassKey(profile.cls));
        for (u32 m = 0; m < cfg.months; ++m) {
            const SimTime windowStart = SimTime(m) * workload::kMonth;
            const bool inOutage = cfg.outageMonths > 0 &&
                                  m >= cfg.outageStartMonth &&
                                  m < cfg.outageStartMonth +
                                          cfg.outageMonths;
            dev.attachFaults(inOutage ? &faults : nullptr);

            // Monthly model sync through the cloud service, under the
            // month's fault plan: first contact is a full install,
            // later months download deltas. A failed sync (outage)
            // leaves the device serving from its stale model.
            if (cfg.cloud &&
                cfg.cloud->latestVersion() > dev.communityVersion()) {
                const auto sres = cfg.cloud->syncDevice(dev);
                if (sres.ok)
                    ++result.cloudSyncs;
                else
                    ++result.cloudSyncFailures;
            }

            stream.setEpoch(m);
            for (const auto &ev : stream.month(windowStart)) {
                if (ev.time > dev.now())
                    dev.advanceTime(ev.time - dev.now());
                dev.serveQuery(ev.pair, device::ServePath::PocketSearch);
            }

            // Coverage is back after an outage month: drain the
            // misses the device queued while the cloud was dark.
            if (!inOutage && !dev.missQueue().empty())
                dev.syncMissQueue();

            collector.collect(windowStart, reg);
        }
        dev.attachFaults(nullptr);
        collector.endDevice(reg);

        const auto snap = reg.snapshot();
        result.queries += snap.counterValue("device.queries");
        result.cacheHits += snap.counterValue("device.cache_hits");
        result.degradedServes +=
            snap.counterValue("device.degraded.serves");
        ++result.devices;
    }
    if (cfg.cloud)
        collector.mergeCloud(cfg.cloud->metrics());
    return result;
}

} // namespace pc::harness
