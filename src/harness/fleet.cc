#include "harness/fleet.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include <cmath>

#include "core/table_codec.h"
#include "harness/event_core.h"
#include "server/work_queue.h"
#include "util/crc32.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/rng.h"

namespace pc::harness {

std::string
userClassKey(workload::UserClass cls)
{
    switch (cls) {
      case workload::UserClass::Low: return "low";
      case workload::UserClass::Medium: return "medium";
      case workload::UserClass::High: return "high";
      case workload::UserClass::Extreme: return "extreme";
    }
    return "unknown";
}

fault::FaultConfig
defaultOutageFaults()
{
    fault::FaultConfig f;
    f.radio.outageShare = 0.45;
    f.radio.meanOutageDuration = 10ll * 60 * kSecond;
    f.radio.exchangeFailureRate = 0.05;
    f.radio.latencySpikeRate = 0.10;
    return f;
}

namespace {

/** CRC-32 over wire pairs in canonical (query fnv, url hash) order. */
u32
digestWirePairs(std::vector<core::WirePair> pairs)
{
    std::sort(pairs.begin(), pairs.end(),
              [](const core::WirePair &a, const core::WirePair &b) {
                  if (a.queryFnv != b.queryFnv)
                      return a.queryFnv < b.queryFnv;
                  return a.urlHash < b.urlHash;
              });
    u32 crc = 0;
    for (const auto &w : pairs) {
        char buf[8 + 8 + 8 + 1];
        std::memcpy(buf, &w.queryFnv, 8);
        std::memcpy(buf + 8, &w.urlHash, 8);
        std::memcpy(buf + 16, &w.score, 8);
        buf[24] = w.accessed ? 1 : 0;
        crc = crc32(std::string_view(buf, sizeof(buf)), crc);
    }
    return crc;
}

} // namespace

u32
contentsDigest(const core::CacheContents &contents,
               const workload::QueryUniverse &universe)
{
    std::vector<core::WirePair> pairs;
    pairs.reserve(contents.pairs.size());
    for (const auto &sp : contents.pairs) {
        core::WirePair w;
        w.queryFnv = fnv1a(universe.query(sp.pair.query).text);
        w.urlHash = urlHash(universe.result(sp.pair.result).url);
        w.score = sp.score;
        w.accessed = false;
        pairs.push_back(w);
    }
    return digestWirePairs(std::move(pairs));
}

u32
deviceTableDigest(const core::PocketSearch &ps)
{
    const auto decoded = core::decodeTable(core::encodeTable(ps.table()));
    pc_assert(decoded.has_value(), "device table failed to round-trip");
    return digestWirePairs(*decoded);
}

std::string
validateFleetRunConfig(const FleetRunConfig &cfg)
{
    if (cfg.chaos.enabled && cfg.cloud == nullptr)
        return "chaos needs a cloud service attached";
    const FlashCrowdConfig &fc = cfg.flashCrowd;
    if (fc.enabled) {
        if (cfg.engine != FleetEngine::EventDriven)
            return "flash crowd needs engine = EventDriven (the epoch "
                   "harness cannot represent sub-epoch arrivals)";
        if (cfg.chaos.enabled)
            return "flash crowd and chaos cannot combine (chaos "
                   "invariants assume the epoch-granular schedule)";
        if (cfg.outageMonths > 0)
            return "flash crowd replaces the epoch outage episode "
                   "(use flashCrowd.outageStart/outageLen)";
        if (!std::isfinite(fc.arrivalsPerHour) || fc.arrivalsPerHour < 0)
            return "flash crowd arrivalsPerHour must be finite and >= 0";
        if (!std::isfinite(fc.burstMultiplier) || fc.burstMultiplier < 0)
            return "flash crowd burstMultiplier must be finite and >= 0";
        if (fc.burstStart < 0 || fc.burstLen < 0 || fc.outageStart < 0 ||
            fc.outageLen < 0 || fc.reconnectStagger < 0 || fc.window < 0)
            return "flash crowd times must be non-negative";
    }
    return "";
}

namespace {

/**
 * Everything one simulated device hands to the in-order fold: the
 * window-boundary snapshots the collector diffs, the final registry
 * it merges, and the deferred accounting of any cloud syncs. Move-only
 * (the registry), which the WorkQueue supports.
 */
struct DeviceTelemetry
{
    std::size_t index = 0;
    std::string classKey;
    std::vector<std::pair<SimTime, obs::MetricsSnapshot>> windows;
    std::unique_ptr<obs::MetricRegistry> registry;
    /** One entry per attempted monthly sync, month order. */
    std::vector<server::CloudUpdateService::SyncAccounting> syncs;

    // Chaos-run evidence for the invariant checker (zero cost when
    // chaos is off: digest never computed, flags stay default).
    u64 finalVersion = 0;     ///< Community version after the run.
    bool anySyncOk = false;   ///< At least one sync applied.
    bool monotone = true;     ///< Version never moved backwards.
    u32 tableDigest = 0;      ///< Canonical table digest (chaos only).
    u64 corruptRejected = 0;  ///< Frames the device's CRC check caught.
    u64 rejectedDeltas = 0;   ///< Deltas validation rejected.
    u64 injectedCorruptions = 0; ///< Flips the fault plans injected.
    u64 shedSyncs = 0;        ///< Syncs shed by the admission rule.
    u64 reconnectDrains = 0;  ///< Flash-crowd reconnect miss drains.
    bool sabotaged = false;   ///< Chaos silently corrupted this table.
    /** Flight-recorder window (chaos only), for postmortems. */
    std::vector<obs::SyncEvent> events;
};

/**
 * One device's private simulation world plus the steps both engines
 * drive it with. The epoch loop calls beginMonth / serve-per-event /
 * endMonth directly; the event drivers schedule the *same member
 * functions* as continuations in an EventCore. Sharing the step
 * bodies is the structural half of the differential guarantee: with
 * an epoch-granular schedule the two engines execute the identical
 * operation sequence, so every registry mutation, RNG draw and
 * snapshot lands in the same order — fleet_differential_test proves
 * the resulting bytes match.
 */
class DeviceSim
{
  public:
    DeviceSim(const Workbench &wb, const FleetRunConfig &cfg,
              std::size_t i, const workload::UserProfile &profile)
        : cfg_(cfg), i_(i), chaos_(cfg.chaos.enabled),
          devSeed_(cfg.seed * 1000003ull + u64(i) * 7919ull)
    {
        out_.index = i;
        out_.classKey = userClassKey(profile.cls);
        out_.registry = std::make_unique<obs::MetricRegistry>();

        // Chaos runs pin the cache to CommunityOnly so a synced device
        // table is byte-comparable to the server model (the invariant
        // the fold checks); chaos off leaves the config untouched.
        core::PocketSearchConfig psCfg;
        if (chaos_)
            psCfg.mode = core::CacheMode::CommunityOnly;
        dev_.emplace(wb.universe(), cfg.device, psCfg);
        if (!cfg.cloud)
            dev_->installCommunityCache(wb.communityCache());
        dev_->attachMetrics(out_.registry.get());

        // Chaos attaches the flight recorder: every sync leaves a
        // causal event chain (both tiers), so an invariant trip comes
        // back as an explained postmortem instead of a bare count. The
        // recorder is private to this worker — recording stays
        // deterministic and thread-free.
        if (chaos_) {
            recorder_.emplace(u64(i), cfg.recorderCapacity);
            dev_->attachFlightRecorder(&*recorder_);
        }

        // Health ledgers are plain registry counters, so they ride the
        // same snapshots and device-index-ordered fold as every other
        // metric — no extra plumbing keeps them deterministic.
        if (cfg.health) {
            health_.emplace(*out_.registry);
            dev_->attachHealth(&*health_);
        }

        // Version-skew cohort: every skewEvery-th device claims a
        // model version it never installed, alternating between an
        // in-window lie (forces transactional rejection, then
        // escalation) and an off-window lie (forces an immediate full
        // install).
        if (chaos_ && cfg.chaos.skewEvery != 0 && cfg.cloud &&
            i % cfg.chaos.skewEvery == 0) {
            const u64 oldest = cfg.cloud->oldestVersion();
            if (oldest > 0) {
                const u64 claim = ((i / cfg.chaos.skewEvery) % 2 == 0)
                                      ? oldest
                                      : (oldest > 1 ? oldest - 1 : oldest);
                dev_->setCommunityVersion(claim);
                lastVersion_ = claim;
            }
        }

        // Per-device derived seeds: device index decorrelates streams
        // and fault schedules, the run seed shifts the whole fleet.
        stream_.emplace(wb.universe(), profile, devSeed_);
        fault::FaultConfig faultCfg = cfg.outageFaults;
        faultCfg.seed = devSeed_ + 1;
        faults_.emplace(faultCfg);

        // Chaos fault plans replace the outage-episode plan for the
        // whole run: stormPlan kills the radio outright, chaosPlan
        // flips payload bits at the configured rate. Only built under
        // chaos, so a disabled ChaosConfig draws nothing and changes
        // no bytes.
        if (chaos_) {
            fault::FaultConfig storm;
            storm.seed = devSeed_ + 2;
            storm.radio.exchangeFailureRate = 1.0;
            stormPlan_.emplace(storm);
            fault::FaultConfig flips;
            flips.seed = devSeed_ + 3;
            flips.radio.payloadCorruptRate = cfg.chaos.payloadCorruptRate;
            chaosPlan_.emplace(flips);
        }

        // Flash-crowd outage plan: radio dead between the OutageStart
        // event and the device's staggered Reconnect event.
        if (cfg.flashCrowd.enabled && cfg.flashCrowd.outageLen > 0) {
            fault::FaultConfig dead;
            dead.seed = devSeed_ + 5;
            dead.radio.exchangeFailureRate = 1.0;
            flashOutagePlan_.emplace(dead);
        }
    }

    /**
     * Month prologue: fault-plan attachment for the epoch-granular
     * schedule (the flash-crowd driver owns fault attachment through
     * its outage events instead) and the monthly cloud sync.
     */
    void
    beginMonth(u32 m)
    {
        const bool inOutage = cfg_.outageMonths > 0 &&
                              m >= cfg_.outageStartMonth &&
                              m < cfg_.outageStartMonth + cfg_.outageMonths;
        const bool inStorm =
            chaos_ && cfg_.chaos.stormMonths > 0 &&
            m >= cfg_.chaos.stormStartMonth &&
            m < cfg_.chaos.stormStartMonth + cfg_.chaos.stormMonths;
        if (!inStorm)
            ++nonStormMonths_;
        if (!cfg_.flashCrowd.enabled) {
            if (chaos_)
                dev_->attachFaults(inStorm ? &*stormPlan_ : &*chaosPlan_);
            else
                dev_->attachFaults(inOutage ? &*faults_ : nullptr);
            radioDark_ = chaos_ ? inStorm : inOutage;
        }

        // Monthly model sync through the cloud service, under the
        // month's fault plan: first contact is a full install, later
        // months download deltas. A failed sync (outage) leaves the
        // device serving from its stale model. The sync is detached:
        // the service registry is replayed by the fold, not written
        // here, so concurrent workers never share mutable state.
        if (cfg_.cloud &&
            cfg_.cloud->latestVersion() > dev_->communityVersion()) {
            // Deterministic admission rule: each non-storm month
            // admits another herdBudgetPerMonth devices (by index), so
            // a post-storm reconnect herd drains over several months.
            // Device-local, hence thread-count independent.
            const bool shed =
                chaos_ && cfg_.chaos.herdBudgetPerMonth > 0 &&
                u64(i_) >=
                    u64(nonStormMonths_) * cfg_.chaos.herdBudgetPerMonth;
            if (shed) {
                server::CloudUpdateService::SyncAccounting acct;
                acct.shed = true;
                out_.syncs.push_back(acct);
                ++out_.shedSyncs;
            } else {
                server::CloudUpdateService::SyncAccounting acct;
                const auto res = cfg_.cloud->syncDetached(*dev_, &acct);
                out_.syncs.push_back(acct);
                if (res.ok)
                    out_.anySyncOk = true;
            }
            if (dev_->communityVersion() < lastVersion_)
                out_.monotone = false;
            lastVersion_ = dev_->communityVersion();
        }
    }

    /** The month's epoch-granular query schedule (time-ordered). */
    std::vector<workload::StreamEvent>
    monthEvents(u32 m)
    {
        stream_->setEpoch(m);
        return stream_->month(SimTime(m) * workload::kMonth);
    }

    /** Advance the stream's epoch/window without materializing events
     *  (flash-crowd mode draws pairs one arrival at a time). */
    void
    beginStreamMonth(u32 m)
    {
        stream_->setEpoch(m);
        stream_->beginMonth(SimTime(m) * workload::kMonth);
    }

    /** Draw the next arrival's pair (flash-crowd mode; the caller
     *  overrides the stream's evenly-spread timestamp). */
    workload::StreamEvent nextArrivalPair() { return stream_->next(); }

    /** Serve one query event. */
    void
    serve(const workload::StreamEvent &ev)
    {
        if (ev.time > dev_->now())
            dev_->advanceTime(ev.time - dev_->now());
        dev_->serveQuery(ev.pair, device::ServePath::PocketSearch);
    }

    /**
     * Month epilogue: drain the misses the device queued while the
     * cloud was dark (coverage is back after an outage/storm month)
     * and snapshot the telemetry window.
     */
    void
    endMonth(u32 m)
    {
        if (!radioDark_ && !dev_->missQueue().empty())
            dev_->syncMissQueue();
        out_.windows.emplace_back(SimTime(m) * workload::kMonth,
                                  out_.registry->snapshot());
    }

    /** Flash-crowd OutageStart event: the radio goes dark mid-month. */
    void
    radioDown()
    {
        dev_->attachFaults(&*flashOutagePlan_);
        radioDark_ = true;
    }

    /**
     * Flash-crowd Reconnect event: coverage returns at this device's
     * staggered slot; the queued misses sync immediately — the
     * sub-epoch sync storm the epoch harness cannot express.
     */
    void
    reconnect()
    {
        dev_->attachFaults(nullptr);
        radioDark_ = false;
        if (!dev_->missQueue().empty()) {
            dev_->syncMissQueue();
            ++out_.reconnectDrains;
        }
    }

    /** Snapshot one telemetry window (flash-crowd sub-month widths). */
    void
    snapshotWindow(SimTime windowStart)
    {
        out_.windows.emplace_back(windowStart, out_.registry->snapshot());
    }

    /** Run epilogue: sabotage injection, chaos evidence, detach. */
    DeviceTelemetry
    finish()
    {
        dev_->attachFaults(nullptr);

        // Deliberate sabotage: silently bump one cached pair's score —
        // a corruption the CRC frame never saw. The digest invariant
        // must trip and the postmortem must explain it; the Sabotage
        // event is the ground-truth marker the report carries.
        if (chaos_ && cfg_.chaos.sabotageEvery != 0 && cfg_.cloud &&
            i_ % cfg_.chaos.sabotageEvery == 0 &&
            cfg_.cloud->latestVersion() > 0 &&
            dev_->communityVersion() == cfg_.cloud->latestVersion()) {
            const auto &pairs = cfg_.cloud->latest().contents.pairs;
            if (!pairs.empty()) {
                const auto &victim = pairs.front();
                if (dev_->pocketSearch().setPairScore(victim.pair,
                                                      victim.score + 1.0)) {
                    out_.sabotaged = true;
                    if (recorder_.has_value()) {
                        obs::TraceContext ctx = recorder_->beginTrace();
                        obs::SyncEvent ev;
                        ev.traceId = ctx.traceId;
                        ev.span = ctx.newSpan();
                        ev.tier = obs::SyncTier::Device;
                        ev.stage = obs::SyncStage::Sabotage;
                        ev.ok = false;
                        ev.fromVersion = dev_->communityVersion();
                        ev.toVersion = dev_->communityVersion();
                        ev.detail = u64(victim.pair.query);
                        ev.start = dev_->now();
                        recorder_->record(ev);
                    }
                }
            }
        }

        out_.finalVersion = dev_->communityVersion();
        if (chaos_) {
            out_.tableDigest = deviceTableDigest(dev_->pocketSearch());
            out_.injectedCorruptions =
                chaosPlan_->stats().payloadCorruptions +
                stormPlan_->stats().payloadCorruptions;
            out_.corruptRejected = dev_->resilience().corruptDeltas;
            out_.rejectedDeltas = dev_->resilience().rejectedDeltas;
            if (recorder_.has_value()) {
                out_.events = recorder_->events();
                // Ring pressure into the device registry, so the fleet
                // snapshot exposes trace loss ("obs.flight.*").
                recorder_->publishMetrics(*out_.registry);
            }
            dev_->attachFlightRecorder(nullptr);
        }
        if (health_.has_value())
            dev_->attachHealth(nullptr);
        return std::move(out_);
    }

    u64 deviceSeed() const { return devSeed_; }

  private:
    const FleetRunConfig &cfg_;
    std::size_t i_;
    bool chaos_;
    u64 devSeed_;
    DeviceTelemetry out_;
    std::optional<device::MobileDevice> dev_;
    std::optional<obs::FlightRecorder> recorder_;
    std::optional<obs::health::HealthAccountant> health_;
    std::optional<workload::UserStream> stream_;
    std::optional<fault::FaultPlan> faults_;
    std::optional<fault::FaultPlan> stormPlan_;
    std::optional<fault::FaultPlan> chaosPlan_;
    std::optional<fault::FaultPlan> flashOutagePlan_;
    u64 lastVersion_ = 0;
    u32 nonStormMonths_ = 0;
    bool radioDark_ = false;
};

/**
 * EventDriven engine, epoch-granular schedule: the exact month
 * structure of the epoch loop expressed as continuations. MonthBegin
 * schedules the month's query arrivals (timestamps clamped to a
 * running maximum so the heap's (time, device, seq) order replays the
 * stream's generation order even across duplicate timestamps) and the
 * MonthEnd boundary event; MonthEnd schedules the next MonthBegin at
 * the *same* boundary instant — the seq tie-break guarantees epilogue
 * before prologue, which the differential gate would instantly catch
 * if it ever regressed.
 */
void
driveEpochSchedule(DeviceSim &sim, const FleetRunConfig &cfg,
                   std::size_t i)
{
    EventCore core;
    std::function<void(EventCore &, u32)> beginMonth =
        [&](EventCore &c, u32 m) {
            sim.beginMonth(m);
            const SimTime windowStart = SimTime(m) * workload::kMonth;
            SimTime cursor = windowStart;
            for (const auto &ev : sim.monthEvents(m)) {
                cursor = std::max(cursor, ev.time);
                c.schedule(cursor, i,
                           [&sim, ev](EventCore &,
                                      const EventCore::EventInfo &) {
                               sim.serve(ev);
                           });
            }
            const SimTime boundary = windowStart + workload::kMonth;
            c.schedule(
                boundary, i,
                [&sim, &beginMonth, &cfg, m,
                 i](EventCore &c2, const EventCore::EventInfo &) {
                    sim.endMonth(m);
                    if (m + 1 < cfg.months)
                        c2.schedule(c2.now(), i,
                                    [&beginMonth, m](
                                        EventCore &c3,
                                        const EventCore::EventInfo &) {
                                        beginMonth(c3, m + 1);
                                    });
                });
        };
    if (cfg.months > 0)
        core.schedule(0, i,
                      [&beginMonth](EventCore &c,
                                    const EventCore::EventInfo &) {
                          beginMonth(c, 0);
                      });
    core.run();
}

/**
 * EventDriven engine, flash-crowd schedule: Poisson query arrivals
 * (thinning against the burst-boosted peak rate), a mid-month radio
 * outage with per-device staggered reconnect, monthly cloud syncs at
 * month-begin events, and telemetry snapshots on the scenario's own
 * (possibly sub-month) window width. Push order at equal timestamps:
 * window snapshot, then month begin, then outage transitions, then
 * arrivals — fixed here once so the artifact bytes are a pure
 * function of the config.
 */
void
driveFlashCrowd(DeviceSim &sim, const FleetRunConfig &cfg, std::size_t i)
{
    const FlashCrowdConfig &fc = cfg.flashCrowd;
    const SimTime horizon = SimTime(cfg.months) * workload::kMonth;
    if (horizon <= 0)
        return;
    EventCore core;

    // Telemetry windows first, so a window ending exactly on a month
    // boundary closes before that month's sync runs.
    const SimTime width = fc.window > 0 ? fc.window : workload::kMonth;
    for (SimTime ws = 0; ws < horizon; ws += width) {
        const SimTime end = std::min(ws + width, horizon);
        core.schedule(end, i,
                      [&sim, ws](EventCore &,
                                 const EventCore::EventInfo &) {
                          sim.snapshotWindow(ws);
                      });
    }

    for (u32 m = 0; m < cfg.months; ++m)
        core.schedule(SimTime(m) * workload::kMonth, i,
                      [&sim, m](EventCore &,
                                const EventCore::EventInfo &) {
                          sim.beginMonth(m);
                          sim.beginStreamMonth(m);
                      });

    if (fc.outageLen > 0 && fc.outageStart < horizon) {
        core.schedule(fc.outageStart, i,
                      [&sim](EventCore &, const EventCore::EventInfo &) {
                          sim.radioDown();
                      });
        // Staggered reconnect: device i's slot; clamped so the drain
        // still happens inside the run.
        const SimTime outageEnd =
            std::min(fc.outageStart + fc.outageLen, horizon);
        SimTime reconnectAt = outageEnd;
        if (fc.reconnectStagger > 0) {
            const double slot = double(outageEnd) +
                                double(i) * double(fc.reconnectStagger);
            reconnectAt = slot >= double(horizon) ? horizon
                                                  : SimTime(slot);
        }
        core.schedule(reconnectAt, i,
                      [&sim](EventCore &, const EventCore::EventInfo &) {
                          sim.reconnect();
                      });
    }

    // Poisson arrival chain: each arrival schedules its successor.
    // Thinning keeps the draw sequence a pure function of (seed,
    // device): candidate steps come from the peak rate, and a second
    // uniform accepts with probability rate(t)/peak.
    const double perTick =
        fc.arrivalsPerHour / (3600.0 * double(kSecond));
    const double peak = perTick * std::max(1.0, fc.burstMultiplier);
    const SimTime burstStart = std::min(fc.burstStart, horizon);
    const SimTime burstEnd =
        fc.burstLen > horizon - burstStart ? horizon
                                           : burstStart + fc.burstLen;
    const auto rateAt = [&](SimTime t) {
        return perTick * (t >= burstStart && t < burstEnd
                              ? fc.burstMultiplier
                              : 1.0);
    };
    auto arrivals = std::make_shared<Rng>(sim.deviceSeed() + 4);
    std::function<void(EventCore &, SimTime)> scheduleNext =
        [&sim, &scheduleNext, arrivals, rateAt, peak, horizon,
         i](EventCore &c, SimTime from) {
            if (!(peak > 0))
                return;
            double t = double(from);
            for (;;) {
                const double u = arrivals->uniform();
                t += -std::log(1.0 - u) / peak;
                if (t >= double(horizon))
                    return;
                if (arrivals->uniform() * peak < rateAt(SimTime(t)))
                    break;
            }
            const SimTime at = SimTime(t);
            c.schedule(at, i,
                       [&sim, &scheduleNext, at](
                           EventCore &c2, const EventCore::EventInfo &) {
                           workload::StreamEvent se =
                               sim.nextArrivalPair();
                           se.time = at;
                           sim.serve(se);
                           scheduleNext(c2, at);
                       });
        };
    scheduleNext(core, 0);
    core.run();
}

/**
 * Simulate device `i` in a private world under the configured engine.
 * Reads the workbench and the cloud service (if any) strictly
 * read-only, so any number of these may run concurrently.
 */
DeviceTelemetry
simulateDevice(const Workbench &wb, const FleetRunConfig &cfg,
               std::size_t i, const workload::UserProfile &profile)
{
    DeviceSim sim(wb, cfg, i, profile);
    if (cfg.engine == FleetEngine::EpochStepped) {
        for (u32 m = 0; m < cfg.months; ++m) {
            sim.beginMonth(m);
            for (const auto &ev : sim.monthEvents(m))
                sim.serve(ev);
            sim.endMonth(m);
        }
    } else if (!cfg.flashCrowd.enabled) {
        driveEpochSchedule(sim, cfg, i);
    } else {
        driveFlashCrowd(sim, cfg, i);
    }
    return sim.finish();
}

/**
 * What the invariant checker compares every chaos device against:
 * the latest server version and the canonical digest of its contents.
 * Computed once per run, before the fold starts.
 */
struct ChaosCheckCtx
{
    bool active = false;
    u64 latest = 0;
    u32 expectedDigest = 0;
};

/**
 * Fold one device's telemetry into the collector, the cloud registry
 * and the scalar result. Must be called in device-index order — the
 * whole byte-identity argument rests on it. Under chaos (ctx.active)
 * this is also the invariant checker: every device that ever synced
 * successfully must have ended byte-identical to the latest server
 * model, versions must be monotone, and every injected corruption
 * must have been caught by the CRC frame.
 */
void
foldDevice(DeviceTelemetry &&t, const FleetRunConfig &cfg,
           const ChaosCheckCtx &ctx, obs::FleetCollector &collector,
           FleetRunResult &result)
{
    collector.beginDevice(t.classKey);
    for (const auto &[windowStart, snap] : t.windows)
        collector.collect(windowStart, snap);
    collector.endDevice(*t.registry);

    for (const auto &acct : t.syncs) {
        cfg.cloud->accountSync(acct);
        if (acct.shed)
            ++result.cloudSyncsShed;
        else if (acct.ok)
            ++result.cloudSyncs;
        else
            ++result.cloudSyncFailures;
        if (acct.escalated)
            ++result.escalatedFullInstalls;
    }
    result.corruptRejected += t.corruptRejected;
    result.rejectedDeltas += t.rejectedDeltas;
    result.reconnectSyncs += t.reconnectDrains;

    if (ctx.active) {
        // Violations come back explained: the verdict plus the
        // device's causal event chain (postmortem.h). Reports are
        // appended here, in device-index order, so the postmortem
        // artifact is byte-identical at any thread count.
        const auto report = [&](InvariantKind kind) {
            InvariantReport r;
            r.device = t.index;
            r.kind = kind;
            r.sabotaged = t.sabotaged;
            r.deviceVersion = t.finalVersion;
            r.serverVersion = ctx.latest;
            r.deviceDigest = t.tableDigest;
            r.serverDigest = ctx.expectedDigest;
            r.corruptCaught = t.corruptRejected;
            r.corruptInjected = t.injectedCorruptions;
            r.chain = t.events;
            result.invariantReports.push_back(std::move(r));
            ++result.invariantViolations;
        };
        if (t.sabotaged)
            ++result.devicesSabotaged;
        if (!t.monotone) {
            pc_warn("chaos invariant: device ", t.index,
                    " saw a non-monotone version history");
            report(InvariantKind::NonMonotoneVersion);
        }
        if (t.corruptRejected != t.injectedCorruptions) {
            pc_warn("chaos invariant: device ", t.index, " caught ",
                    t.corruptRejected, " corruptions but ",
                    t.injectedCorruptions, " were injected");
            report(InvariantKind::UncaughtCorruption);
        }
        if (t.anySyncOk) {
            ++result.devicesVerified;
            if (t.finalVersion != ctx.latest ||
                t.tableDigest != ctx.expectedDigest) {
                pc_warn("chaos invariant: device ", t.index,
                        " synced ok but ended at version ",
                        t.finalVersion, " digest ", t.tableDigest,
                        " (server: version ", ctx.latest, " digest ",
                        ctx.expectedDigest, ")");
                report(InvariantKind::DigestMismatch);
            }
        }
    }

    const auto snap = t.registry->snapshot();
    result.queries += snap.counterValue("device.queries");
    result.cacheHits += snap.counterValue("device.cache_hits");
    result.degradedServes += snap.counterValue("device.degraded.serves");
    ++result.devices;
}

} // namespace

FleetRunResult
runFleet(const Workbench &wb, const FleetRunConfig &cfg,
         obs::FleetCollector &collector)
{
    FleetRunResult earlyOut;
    earlyOut.error = validateFleetRunConfig(cfg);
    if (!earlyOut.error.empty()) {
        pc_warn("runFleet refused: ", earlyOut.error);
        return earlyOut;
    }

    ChaosCheckCtx ctx;
    if (cfg.chaos.enabled && cfg.cloud &&
        cfg.cloud->latestVersion() > 0) {
        ctx.active = true;
        ctx.latest = cfg.cloud->latestVersion();
        ctx.expectedDigest =
            contentsDigest(cfg.cloud->latest().contents, wb.universe());
    }

    workload::PopulationSampler sampler(wb.population());
    const auto profiles = sampler.samplePopulation(cfg.devices);

    unsigned threads =
        cfg.threads ? cfg.threads : std::thread::hardware_concurrency();
    if (threads == 0)
        threads = 1;
    // A 0-device fleet (or a 0-month horizon, which samples devices
    // but simulates nothing) is a clean empty run, not an error: the
    // in-place path folds zero (or all-zero) devices and the cloud
    // registry still merges below — identically under both engines.
    if (std::size_t(threads) > cfg.devices)
        threads = cfg.devices > 0 ? unsigned(cfg.devices) : 1;

    FleetRunResult result;
    if (threads == 1) {
        // In-place: one device world alive at a time.
        for (std::size_t i = 0; i < profiles.size(); ++i)
            foldDevice(simulateDevice(wb, cfg, i, profiles[i]), cfg,
                       ctx, collector, result);
    } else {
        // Device indices out through one bounded queue, telemetry back
        // through another. The results queue is small on purpose —
        // backpressure keeps fast workers from piling up telemetry the
        // in-order fold is not ready for; the fold drains continuously
        // (stashing out-of-order arrivals), so workers never deadlock
        // against a full queue.
        server::WorkQueue<std::size_t> tasks(cfg.devices);
        for (std::size_t i = 0; i < cfg.devices; ++i)
            tasks.push(i);
        tasks.close();

        server::WorkQueue<DeviceTelemetry> results(2 * threads);
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned w = 0; w < threads; ++w) {
            pool.emplace_back([&] {
                std::size_t i = 0;
                while (tasks.pop(i))
                    results.push(
                        simulateDevice(wb, cfg, i, profiles[i]));
            });
        }

        std::map<std::size_t, DeviceTelemetry> pending;
        std::size_t next = 0;
        while (next < cfg.devices) {
            DeviceTelemetry t;
            const bool got = results.pop(t);
            pc_assert(got, "runFleet: results queue closed early");
            pending.emplace(t.index, std::move(t));
            for (auto it = pending.find(next); it != pending.end();
                 it = pending.find(next)) {
                foldDevice(std::move(it->second), cfg, ctx, collector,
                           result);
                pending.erase(it);
                ++next;
            }
        }
        results.close();
        for (auto &th : pool)
            th.join();
    }

    if (cfg.cloud)
        collector.mergeCloud(cfg.cloud->metrics());
    return result;
}

} // namespace pc::harness
