#include "harness/fleet.h"

#include <map>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "server/work_queue.h"
#include "util/logging.h"

namespace pc::harness {

std::string
userClassKey(workload::UserClass cls)
{
    switch (cls) {
      case workload::UserClass::Low: return "low";
      case workload::UserClass::Medium: return "medium";
      case workload::UserClass::High: return "high";
      case workload::UserClass::Extreme: return "extreme";
    }
    return "unknown";
}

fault::FaultConfig
defaultOutageFaults()
{
    fault::FaultConfig f;
    f.radio.outageShare = 0.45;
    f.radio.meanOutageDuration = 10ll * 60 * kSecond;
    f.radio.exchangeFailureRate = 0.05;
    f.radio.latencySpikeRate = 0.10;
    return f;
}

namespace {

/**
 * Everything one simulated device hands to the in-order fold: the
 * window-boundary snapshots the collector diffs, the final registry
 * it merges, and the deferred accounting of any cloud syncs. Move-only
 * (the registry), which the WorkQueue supports.
 */
struct DeviceTelemetry
{
    std::size_t index = 0;
    std::string classKey;
    std::vector<std::pair<SimTime, obs::MetricsSnapshot>> windows;
    std::unique_ptr<obs::MetricRegistry> registry;
    /** One entry per attempted monthly sync, month order. */
    std::vector<server::CloudUpdateService::SyncAccounting> syncs;
};

/**
 * Simulate device `i` in a private world. Reads the workbench and the
 * cloud service (if any) strictly read-only, so any number of these
 * may run concurrently.
 */
DeviceTelemetry
simulateDevice(const Workbench &wb, const FleetRunConfig &cfg,
               std::size_t i, const workload::UserProfile &profile)
{
    DeviceTelemetry out;
    out.index = i;
    out.classKey = userClassKey(profile.cls);
    out.registry = std::make_unique<obs::MetricRegistry>();

    device::MobileDevice dev(wb.universe(), cfg.device);
    if (!cfg.cloud)
        dev.installCommunityCache(wb.communityCache());
    dev.attachMetrics(out.registry.get());

    // Per-device derived seeds: device index decorrelates streams
    // and fault schedules, the run seed shifts the whole fleet.
    const u64 devSeed = cfg.seed * 1000003ull + u64(i) * 7919ull;
    workload::UserStream stream(wb.universe(), profile, devSeed);
    fault::FaultConfig faultCfg = cfg.outageFaults;
    faultCfg.seed = devSeed + 1;
    fault::FaultPlan faults(faultCfg);

    for (u32 m = 0; m < cfg.months; ++m) {
        const SimTime windowStart = SimTime(m) * workload::kMonth;
        const bool inOutage = cfg.outageMonths > 0 &&
                              m >= cfg.outageStartMonth &&
                              m < cfg.outageStartMonth + cfg.outageMonths;
        dev.attachFaults(inOutage ? &faults : nullptr);

        // Monthly model sync through the cloud service, under the
        // month's fault plan: first contact is a full install, later
        // months download deltas. A failed sync (outage) leaves the
        // device serving from its stale model. The sync is detached:
        // the service registry is replayed by the fold, not written
        // here, so concurrent workers never share mutable state.
        if (cfg.cloud &&
            cfg.cloud->latestVersion() > dev.communityVersion()) {
            server::CloudUpdateService::SyncAccounting acct;
            cfg.cloud->syncDetached(dev, &acct);
            out.syncs.push_back(acct);
        }

        stream.setEpoch(m);
        for (const auto &ev : stream.month(windowStart)) {
            if (ev.time > dev.now())
                dev.advanceTime(ev.time - dev.now());
            dev.serveQuery(ev.pair, device::ServePath::PocketSearch);
        }

        // Coverage is back after an outage month: drain the misses
        // the device queued while the cloud was dark.
        if (!inOutage && !dev.missQueue().empty())
            dev.syncMissQueue();

        out.windows.emplace_back(windowStart, out.registry->snapshot());
    }
    dev.attachFaults(nullptr);
    return out;
}

/**
 * Fold one device's telemetry into the collector, the cloud registry
 * and the scalar result. Must be called in device-index order — the
 * whole byte-identity argument rests on it.
 */
void
foldDevice(DeviceTelemetry &&t, const FleetRunConfig &cfg,
           obs::FleetCollector &collector, FleetRunResult &result)
{
    collector.beginDevice(t.classKey);
    for (const auto &[windowStart, snap] : t.windows)
        collector.collect(windowStart, snap);
    collector.endDevice(*t.registry);

    for (const auto &acct : t.syncs) {
        cfg.cloud->accountSync(acct);
        if (acct.ok)
            ++result.cloudSyncs;
        else
            ++result.cloudSyncFailures;
    }

    const auto snap = t.registry->snapshot();
    result.queries += snap.counterValue("device.queries");
    result.cacheHits += snap.counterValue("device.cache_hits");
    result.degradedServes += snap.counterValue("device.degraded.serves");
    ++result.devices;
}

} // namespace

FleetRunResult
runFleet(const Workbench &wb, const FleetRunConfig &cfg,
         obs::FleetCollector &collector)
{
    pc_assert(cfg.devices > 0, "runFleet: need at least one device");
    pc_assert(cfg.months > 0, "runFleet: need at least one month");

    workload::PopulationSampler sampler(wb.population());
    const auto profiles = sampler.samplePopulation(cfg.devices);

    unsigned threads =
        cfg.threads ? cfg.threads : std::thread::hardware_concurrency();
    if (threads == 0)
        threads = 1;
    if (std::size_t(threads) > cfg.devices)
        threads = unsigned(cfg.devices);

    FleetRunResult result;
    if (threads == 1) {
        // In-place: one device world alive at a time.
        for (std::size_t i = 0; i < profiles.size(); ++i)
            foldDevice(simulateDevice(wb, cfg, i, profiles[i]), cfg,
                       collector, result);
    } else {
        // Device indices out through one bounded queue, telemetry back
        // through another. The results queue is small on purpose —
        // backpressure keeps fast workers from piling up telemetry the
        // in-order fold is not ready for; the fold drains continuously
        // (stashing out-of-order arrivals), so workers never deadlock
        // against a full queue.
        server::WorkQueue<std::size_t> tasks(cfg.devices);
        for (std::size_t i = 0; i < cfg.devices; ++i)
            tasks.push(i);
        tasks.close();

        server::WorkQueue<DeviceTelemetry> results(2 * threads);
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned w = 0; w < threads; ++w) {
            pool.emplace_back([&] {
                std::size_t i = 0;
                while (tasks.pop(i))
                    results.push(
                        simulateDevice(wb, cfg, i, profiles[i]));
            });
        }

        std::map<std::size_t, DeviceTelemetry> pending;
        std::size_t next = 0;
        while (next < cfg.devices) {
            DeviceTelemetry t;
            const bool got = results.pop(t);
            pc_assert(got, "runFleet: results queue closed early");
            pending.emplace(t.index, std::move(t));
            for (auto it = pending.find(next); it != pending.end();
                 it = pending.find(next)) {
                foldDevice(std::move(it->second), cfg, collector,
                           result);
                pending.erase(it);
                ++next;
            }
        }
        results.close();
        for (auto &th : pool)
            th.join();
    }

    if (cfg.cloud)
        collector.mergeCloud(cfg.cloud->metrics());
    return result;
}

} // namespace pc::harness
