#include "harness/fleet.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "core/table_codec.h"
#include "server/work_queue.h"
#include "util/crc32.h"
#include "util/hash.h"
#include "util/logging.h"

namespace pc::harness {

std::string
userClassKey(workload::UserClass cls)
{
    switch (cls) {
      case workload::UserClass::Low: return "low";
      case workload::UserClass::Medium: return "medium";
      case workload::UserClass::High: return "high";
      case workload::UserClass::Extreme: return "extreme";
    }
    return "unknown";
}

fault::FaultConfig
defaultOutageFaults()
{
    fault::FaultConfig f;
    f.radio.outageShare = 0.45;
    f.radio.meanOutageDuration = 10ll * 60 * kSecond;
    f.radio.exchangeFailureRate = 0.05;
    f.radio.latencySpikeRate = 0.10;
    return f;
}

namespace {

/** CRC-32 over wire pairs in canonical (query fnv, url hash) order. */
u32
digestWirePairs(std::vector<core::WirePair> pairs)
{
    std::sort(pairs.begin(), pairs.end(),
              [](const core::WirePair &a, const core::WirePair &b) {
                  if (a.queryFnv != b.queryFnv)
                      return a.queryFnv < b.queryFnv;
                  return a.urlHash < b.urlHash;
              });
    u32 crc = 0;
    for (const auto &w : pairs) {
        char buf[8 + 8 + 8 + 1];
        std::memcpy(buf, &w.queryFnv, 8);
        std::memcpy(buf + 8, &w.urlHash, 8);
        std::memcpy(buf + 16, &w.score, 8);
        buf[24] = w.accessed ? 1 : 0;
        crc = crc32(std::string_view(buf, sizeof(buf)), crc);
    }
    return crc;
}

} // namespace

u32
contentsDigest(const core::CacheContents &contents,
               const workload::QueryUniverse &universe)
{
    std::vector<core::WirePair> pairs;
    pairs.reserve(contents.pairs.size());
    for (const auto &sp : contents.pairs) {
        core::WirePair w;
        w.queryFnv = fnv1a(universe.query(sp.pair.query).text);
        w.urlHash = urlHash(universe.result(sp.pair.result).url);
        w.score = sp.score;
        w.accessed = false;
        pairs.push_back(w);
    }
    return digestWirePairs(std::move(pairs));
}

u32
deviceTableDigest(const core::PocketSearch &ps)
{
    const auto decoded = core::decodeTable(core::encodeTable(ps.table()));
    pc_assert(decoded.has_value(), "device table failed to round-trip");
    return digestWirePairs(*decoded);
}

namespace {

/**
 * Everything one simulated device hands to the in-order fold: the
 * window-boundary snapshots the collector diffs, the final registry
 * it merges, and the deferred accounting of any cloud syncs. Move-only
 * (the registry), which the WorkQueue supports.
 */
struct DeviceTelemetry
{
    std::size_t index = 0;
    std::string classKey;
    std::vector<std::pair<SimTime, obs::MetricsSnapshot>> windows;
    std::unique_ptr<obs::MetricRegistry> registry;
    /** One entry per attempted monthly sync, month order. */
    std::vector<server::CloudUpdateService::SyncAccounting> syncs;

    // Chaos-run evidence for the invariant checker (zero cost when
    // chaos is off: digest never computed, flags stay default).
    u64 finalVersion = 0;     ///< Community version after the run.
    bool anySyncOk = false;   ///< At least one sync applied.
    bool monotone = true;     ///< Version never moved backwards.
    u32 tableDigest = 0;      ///< Canonical table digest (chaos only).
    u64 corruptRejected = 0;  ///< Frames the device's CRC check caught.
    u64 rejectedDeltas = 0;   ///< Deltas validation rejected.
    u64 injectedCorruptions = 0; ///< Flips the fault plans injected.
    u64 shedSyncs = 0;        ///< Syncs shed by the admission rule.
    bool sabotaged = false;   ///< Chaos silently corrupted this table.
    /** Flight-recorder window (chaos only), for postmortems. */
    std::vector<obs::SyncEvent> events;
};

/**
 * Simulate device `i` in a private world. Reads the workbench and the
 * cloud service (if any) strictly read-only, so any number of these
 * may run concurrently.
 */
DeviceTelemetry
simulateDevice(const Workbench &wb, const FleetRunConfig &cfg,
               std::size_t i, const workload::UserProfile &profile)
{
    DeviceTelemetry out;
    out.index = i;
    out.classKey = userClassKey(profile.cls);
    out.registry = std::make_unique<obs::MetricRegistry>();

    // Chaos runs pin the cache to CommunityOnly so a synced device
    // table is byte-comparable to the server model (the invariant the
    // fold checks); chaos off leaves the config untouched.
    const bool chaos = cfg.chaos.enabled;
    core::PocketSearchConfig psCfg;
    if (chaos)
        psCfg.mode = core::CacheMode::CommunityOnly;
    device::MobileDevice dev(wb.universe(), cfg.device, psCfg);
    if (!cfg.cloud)
        dev.installCommunityCache(wb.communityCache());
    dev.attachMetrics(out.registry.get());

    // Chaos attaches the flight recorder: every sync leaves a causal
    // event chain (both tiers), so an invariant trip comes back as an
    // explained postmortem instead of a bare count. The recorder is
    // private to this worker — recording stays deterministic and
    // thread-free.
    std::optional<obs::FlightRecorder> recorder;
    if (chaos) {
        recorder.emplace(u64(i), cfg.recorderCapacity);
        dev.attachFlightRecorder(&*recorder);
    }

    // Health ledgers are plain registry counters, so they ride the
    // same snapshots and device-index-ordered fold as every other
    // metric — no extra plumbing keeps them deterministic.
    std::optional<obs::health::HealthAccountant> health;
    if (cfg.health) {
        health.emplace(*out.registry);
        dev.attachHealth(&*health);
    }

    // Version-skew cohort: every skewEvery-th device claims a model
    // version it never installed, alternating between an in-window lie
    // (forces transactional rejection, then escalation) and an
    // off-window lie (forces an immediate full install).
    u64 lastVersion = 0;
    if (chaos && cfg.chaos.skewEvery != 0 && cfg.cloud &&
        i % cfg.chaos.skewEvery == 0) {
        const u64 oldest = cfg.cloud->oldestVersion();
        if (oldest > 0) {
            const u64 claim = ((i / cfg.chaos.skewEvery) % 2 == 0)
                                  ? oldest
                                  : (oldest > 1 ? oldest - 1 : oldest);
            dev.setCommunityVersion(claim);
            lastVersion = claim;
        }
    }

    // Per-device derived seeds: device index decorrelates streams
    // and fault schedules, the run seed shifts the whole fleet.
    const u64 devSeed = cfg.seed * 1000003ull + u64(i) * 7919ull;
    workload::UserStream stream(wb.universe(), profile, devSeed);
    fault::FaultConfig faultCfg = cfg.outageFaults;
    faultCfg.seed = devSeed + 1;
    fault::FaultPlan faults(faultCfg);

    // Chaos fault plans replace the outage-episode plan for the whole
    // run: stormPlan kills the radio outright, chaosPlan flips payload
    // bits at the configured rate. Only built under chaos, so a
    // disabled ChaosConfig draws nothing and changes no bytes.
    std::optional<fault::FaultPlan> stormPlan;
    std::optional<fault::FaultPlan> chaosPlan;
    if (chaos) {
        fault::FaultConfig storm;
        storm.seed = devSeed + 2;
        storm.radio.exchangeFailureRate = 1.0;
        stormPlan.emplace(storm);
        fault::FaultConfig flips;
        flips.seed = devSeed + 3;
        flips.radio.payloadCorruptRate = cfg.chaos.payloadCorruptRate;
        chaosPlan.emplace(flips);
    }

    u32 nonStormMonths = 0;
    for (u32 m = 0; m < cfg.months; ++m) {
        const SimTime windowStart = SimTime(m) * workload::kMonth;
        const bool inOutage = cfg.outageMonths > 0 &&
                              m >= cfg.outageStartMonth &&
                              m < cfg.outageStartMonth + cfg.outageMonths;
        const bool inStorm =
            chaos && cfg.chaos.stormMonths > 0 &&
            m >= cfg.chaos.stormStartMonth &&
            m < cfg.chaos.stormStartMonth + cfg.chaos.stormMonths;
        if (!inStorm)
            ++nonStormMonths;
        if (chaos)
            dev.attachFaults(inStorm ? &*stormPlan : &*chaosPlan);
        else
            dev.attachFaults(inOutage ? &faults : nullptr);

        // Monthly model sync through the cloud service, under the
        // month's fault plan: first contact is a full install, later
        // months download deltas. A failed sync (outage) leaves the
        // device serving from its stale model. The sync is detached:
        // the service registry is replayed by the fold, not written
        // here, so concurrent workers never share mutable state.
        if (cfg.cloud &&
            cfg.cloud->latestVersion() > dev.communityVersion()) {
            // Deterministic admission rule: each non-storm month
            // admits another herdBudgetPerMonth devices (by index), so
            // a post-storm reconnect herd drains over several months.
            // Device-local, hence thread-count independent.
            const bool shed =
                chaos && cfg.chaos.herdBudgetPerMonth > 0 &&
                u64(i) >=
                    u64(nonStormMonths) * cfg.chaos.herdBudgetPerMonth;
            if (shed) {
                server::CloudUpdateService::SyncAccounting acct;
                acct.shed = true;
                out.syncs.push_back(acct);
                ++out.shedSyncs;
            } else {
                server::CloudUpdateService::SyncAccounting acct;
                const auto res = cfg.cloud->syncDetached(dev, &acct);
                out.syncs.push_back(acct);
                if (res.ok)
                    out.anySyncOk = true;
            }
            if (dev.communityVersion() < lastVersion)
                out.monotone = false;
            lastVersion = dev.communityVersion();
        }

        stream.setEpoch(m);
        for (const auto &ev : stream.month(windowStart)) {
            if (ev.time > dev.now())
                dev.advanceTime(ev.time - dev.now());
            dev.serveQuery(ev.pair, device::ServePath::PocketSearch);
        }

        // Coverage is back after an outage/storm month: drain the
        // misses the device queued while the cloud was dark.
        const bool radioDark = chaos ? inStorm : inOutage;
        if (!radioDark && !dev.missQueue().empty())
            dev.syncMissQueue();

        out.windows.emplace_back(windowStart, out.registry->snapshot());
    }
    dev.attachFaults(nullptr);

    // Deliberate sabotage: silently bump one cached pair's score —
    // a corruption the CRC frame never saw. The digest invariant must
    // trip and the postmortem must explain it; the Sabotage event is
    // the ground-truth marker the report carries.
    if (chaos && cfg.chaos.sabotageEvery != 0 && cfg.cloud &&
        i % cfg.chaos.sabotageEvery == 0 &&
        cfg.cloud->latestVersion() > 0 &&
        dev.communityVersion() == cfg.cloud->latestVersion()) {
        const auto &pairs = cfg.cloud->latest().contents.pairs;
        if (!pairs.empty()) {
            const auto &victim = pairs.front();
            if (dev.pocketSearch().setPairScore(victim.pair,
                                                victim.score + 1.0)) {
                out.sabotaged = true;
                if (recorder.has_value()) {
                    obs::TraceContext ctx = recorder->beginTrace();
                    obs::SyncEvent ev;
                    ev.traceId = ctx.traceId;
                    ev.span = ctx.newSpan();
                    ev.tier = obs::SyncTier::Device;
                    ev.stage = obs::SyncStage::Sabotage;
                    ev.ok = false;
                    ev.fromVersion = dev.communityVersion();
                    ev.toVersion = dev.communityVersion();
                    ev.detail = u64(victim.pair.query);
                    ev.start = dev.now();
                    recorder->record(ev);
                }
            }
        }
    }

    out.finalVersion = dev.communityVersion();
    if (chaos) {
        out.tableDigest = deviceTableDigest(dev.pocketSearch());
        out.injectedCorruptions = chaosPlan->stats().payloadCorruptions +
                                  stormPlan->stats().payloadCorruptions;
        out.corruptRejected = dev.resilience().corruptDeltas;
        out.rejectedDeltas = dev.resilience().rejectedDeltas;
        if (recorder.has_value()) {
            out.events = recorder->events();
            // Ring pressure into the device registry, so the fleet
            // snapshot exposes trace loss ("obs.flight.*").
            recorder->publishMetrics(*out.registry);
        }
        dev.attachFlightRecorder(nullptr);
    }
    if (health.has_value())
        dev.attachHealth(nullptr);
    return out;
}

/**
 * What the invariant checker compares every chaos device against:
 * the latest server version and the canonical digest of its contents.
 * Computed once per run, before the fold starts.
 */
struct ChaosCheckCtx
{
    bool active = false;
    u64 latest = 0;
    u32 expectedDigest = 0;
};

/**
 * Fold one device's telemetry into the collector, the cloud registry
 * and the scalar result. Must be called in device-index order — the
 * whole byte-identity argument rests on it. Under chaos (ctx.active)
 * this is also the invariant checker: every device that ever synced
 * successfully must have ended byte-identical to the latest server
 * model, versions must be monotone, and every injected corruption
 * must have been caught by the CRC frame.
 */
void
foldDevice(DeviceTelemetry &&t, const FleetRunConfig &cfg,
           const ChaosCheckCtx &ctx, obs::FleetCollector &collector,
           FleetRunResult &result)
{
    collector.beginDevice(t.classKey);
    for (const auto &[windowStart, snap] : t.windows)
        collector.collect(windowStart, snap);
    collector.endDevice(*t.registry);

    for (const auto &acct : t.syncs) {
        cfg.cloud->accountSync(acct);
        if (acct.shed)
            ++result.cloudSyncsShed;
        else if (acct.ok)
            ++result.cloudSyncs;
        else
            ++result.cloudSyncFailures;
        if (acct.escalated)
            ++result.escalatedFullInstalls;
    }
    result.corruptRejected += t.corruptRejected;
    result.rejectedDeltas += t.rejectedDeltas;

    if (ctx.active) {
        // Violations come back explained: the verdict plus the
        // device's causal event chain (postmortem.h). Reports are
        // appended here, in device-index order, so the postmortem
        // artifact is byte-identical at any thread count.
        const auto report = [&](InvariantKind kind) {
            InvariantReport r;
            r.device = t.index;
            r.kind = kind;
            r.sabotaged = t.sabotaged;
            r.deviceVersion = t.finalVersion;
            r.serverVersion = ctx.latest;
            r.deviceDigest = t.tableDigest;
            r.serverDigest = ctx.expectedDigest;
            r.corruptCaught = t.corruptRejected;
            r.corruptInjected = t.injectedCorruptions;
            r.chain = t.events;
            result.invariantReports.push_back(std::move(r));
            ++result.invariantViolations;
        };
        if (t.sabotaged)
            ++result.devicesSabotaged;
        if (!t.monotone) {
            pc_warn("chaos invariant: device ", t.index,
                    " saw a non-monotone version history");
            report(InvariantKind::NonMonotoneVersion);
        }
        if (t.corruptRejected != t.injectedCorruptions) {
            pc_warn("chaos invariant: device ", t.index, " caught ",
                    t.corruptRejected, " corruptions but ",
                    t.injectedCorruptions, " were injected");
            report(InvariantKind::UncaughtCorruption);
        }
        if (t.anySyncOk) {
            ++result.devicesVerified;
            if (t.finalVersion != ctx.latest ||
                t.tableDigest != ctx.expectedDigest) {
                pc_warn("chaos invariant: device ", t.index,
                        " synced ok but ended at version ",
                        t.finalVersion, " digest ", t.tableDigest,
                        " (server: version ", ctx.latest, " digest ",
                        ctx.expectedDigest, ")");
                report(InvariantKind::DigestMismatch);
            }
        }
    }

    const auto snap = t.registry->snapshot();
    result.queries += snap.counterValue("device.queries");
    result.cacheHits += snap.counterValue("device.cache_hits");
    result.degradedServes += snap.counterValue("device.degraded.serves");
    ++result.devices;
}

} // namespace

FleetRunResult
runFleet(const Workbench &wb, const FleetRunConfig &cfg,
         obs::FleetCollector &collector)
{
    pc_assert(cfg.devices > 0, "runFleet: need at least one device");
    pc_assert(cfg.months > 0, "runFleet: need at least one month");
    pc_assert(!cfg.chaos.enabled || cfg.cloud != nullptr,
              "runFleet: chaos needs a cloud service");

    ChaosCheckCtx ctx;
    if (cfg.chaos.enabled && cfg.cloud &&
        cfg.cloud->latestVersion() > 0) {
        ctx.active = true;
        ctx.latest = cfg.cloud->latestVersion();
        ctx.expectedDigest =
            contentsDigest(cfg.cloud->latest().contents, wb.universe());
    }

    workload::PopulationSampler sampler(wb.population());
    const auto profiles = sampler.samplePopulation(cfg.devices);

    unsigned threads =
        cfg.threads ? cfg.threads : std::thread::hardware_concurrency();
    if (threads == 0)
        threads = 1;
    if (std::size_t(threads) > cfg.devices)
        threads = unsigned(cfg.devices);

    FleetRunResult result;
    if (threads == 1) {
        // In-place: one device world alive at a time.
        for (std::size_t i = 0; i < profiles.size(); ++i)
            foldDevice(simulateDevice(wb, cfg, i, profiles[i]), cfg,
                       ctx, collector, result);
    } else {
        // Device indices out through one bounded queue, telemetry back
        // through another. The results queue is small on purpose —
        // backpressure keeps fast workers from piling up telemetry the
        // in-order fold is not ready for; the fold drains continuously
        // (stashing out-of-order arrivals), so workers never deadlock
        // against a full queue.
        server::WorkQueue<std::size_t> tasks(cfg.devices);
        for (std::size_t i = 0; i < cfg.devices; ++i)
            tasks.push(i);
        tasks.close();

        server::WorkQueue<DeviceTelemetry> results(2 * threads);
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned w = 0; w < threads; ++w) {
            pool.emplace_back([&] {
                std::size_t i = 0;
                while (tasks.pop(i))
                    results.push(
                        simulateDevice(wb, cfg, i, profiles[i]));
            });
        }

        std::map<std::size_t, DeviceTelemetry> pending;
        std::size_t next = 0;
        while (next < cfg.devices) {
            DeviceTelemetry t;
            const bool got = results.pop(t);
            pc_assert(got, "runFleet: results queue closed early");
            pending.emplace(t.index, std::move(t));
            for (auto it = pending.find(next); it != pending.end();
                 it = pending.find(next)) {
                foldDevice(std::move(it->second), cfg, ctx, collector,
                           result);
                pending.erase(it);
                ++next;
            }
        }
        results.close();
        for (auto &th : pool)
            th.join();
    }

    if (cfg.cloud)
        collector.mergeCloud(cfg.cloud->metrics());
    return result;
}

} // namespace pc::harness
