/**
 * @file
 * Shared experiment setup ("workbench") used by the benchmark binaries
 * and examples: one standard universe, community month, triplet table
 * and community cache, built with the calibrated default parameters so
 * every table/figure binary measures the same world the paper did.
 */

#ifndef PC_HARNESS_WORKBENCH_H
#define PC_HARNESS_WORKBENCH_H

#include <memory>

#include "core/cache_content.h"
#include "logs/triplets.h"
#include "obs/metrics.h"
#include "util/stats.h"
#include "workload/loggen.h"
#include "workload/population.h"
#include "workload/universe.h"

namespace pc::harness {

/**
 * Print a counter bag as a two-column table. The fault-injection
 * experiments merge the plan's injected-fault counters with the
 * device's resilience counters and report them through here, so every
 * experiment shows the same ledger: what was injected, and what the
 * device did about it.
 */
void printCounterReport(const std::string &title, const CounterBag &bag);

/**
 * Print a registry snapshot as tables: one for counters (skipping
 * zeros), one for gauges, one summary row per histogram. The same
 * snapshot can be attached to a BenchReport for the machine-readable
 * twin of this human-readable view.
 */
void printMetricsReport(const std::string &title,
                        const obs::MetricsSnapshot &snap);

/** Scale of the standard experiment world. */
struct WorkbenchConfig
{
    u64 seed = 2011; ///< ASPLOS'11.
    workload::UniverseConfig universe{};
    workload::PopulationConfig population{};
    std::size_t communityUsers = 60'000;
    /** Community cache volume-share target (paper: 55%). */
    double cacheShare = 0.55;
};

/** A smaller world for fast runs (tests, smoke checks). */
WorkbenchConfig smallWorkbenchConfig();

/**
 * The standard experiment world. Construction generates the preceding
 * ("build") month of community logs and derives the community cache
 * from it; evaluation months are generated on demand.
 */
class Workbench
{
  public:
    explicit Workbench(const WorkbenchConfig &cfg = {});

    /** World model. */
    const workload::QueryUniverse &universe() const { return *universe_; }
    /** The build month's community log. */
    const workload::SearchLog &buildLog() const { return *buildLog_; }
    /** Triplet table of the build month. */
    const logs::TripletTable &triplets() const { return *triplets_; }
    /** Community cache contents at the configured share. */
    const core::CacheContents &communityCache() const { return *cache_; }
    /** Population knobs (for sampling evaluation users). */
    const workload::PopulationConfig &population() const
    {
        return cfg_.population;
    }
    /** Configuration. */
    const WorkbenchConfig &config() const { return cfg_; }

    /**
     * Generate the next community month (consecutive calls advance the
     * same community's history), e.g. for update experiments.
     */
    workload::SearchLog nextCommunityMonth();

  private:
    WorkbenchConfig cfg_;
    std::unique_ptr<workload::QueryUniverse> universe_;
    std::unique_ptr<workload::LogGenerator> loggen_;
    std::unique_ptr<workload::SearchLog> buildLog_;
    std::unique_ptr<logs::TripletTable> triplets_;
    std::unique_ptr<core::CacheContents> cache_;
};

} // namespace pc::harness

#endif // PC_HARNESS_WORKBENCH_H
