#include "harness/postmortem.h"

#include <fstream>

#include "obs/jsonparse.h"

namespace pc::harness {

const char *
invariantKindName(InvariantKind k)
{
    switch (k) {
      case InvariantKind::NonMonotoneVersion:
        return "non_monotone_version";
      case InvariantKind::UncaughtCorruption:
        return "uncaught_corruption";
      case InvariantKind::DigestMismatch:
        return "digest_mismatch";
    }
    return "?";
}

namespace {

bool
invariantKindFromName(const std::string &name, InvariantKind &out)
{
    static constexpr InvariantKind kAll[] = {
        InvariantKind::NonMonotoneVersion,
        InvariantKind::UncaughtCorruption,
        InvariantKind::DigestMismatch,
    };
    for (InvariantKind k : kAll) {
        if (name == invariantKindName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

} // namespace

void
writePostmortem(obs::JsonWriter &w,
                const std::vector<InvariantReport> &reports)
{
    w.beginObject();
    w.key("postmortem");
    w.beginObject();
    w.kv("violations", u64(reports.size()));
    w.key("reports");
    w.beginArray();
    for (const InvariantReport &r : reports) {
        w.beginObject();
        w.kv("device", u64(r.device));
        w.kv("kind", invariantKindName(r.kind));
        w.kv("sabotaged", r.sabotaged);
        w.kv("device_version", r.deviceVersion);
        w.kv("server_version", r.serverVersion);
        w.kv("device_digest", u64(r.deviceDigest));
        w.kv("server_digest", u64(r.serverDigest));
        w.kv("corrupt_caught", r.corruptCaught);
        w.kv("corrupt_injected", r.corruptInjected);
        w.key("chain");
        writeSyncEvents(w, r.chain);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    w.endObject();
}

bool
writePostmortemFile(const std::string &path,
                    const std::vector<InvariantReport> &reports)
{
    std::ofstream f(path);
    if (!f)
        return false;
    obs::JsonWriter w(f, /*pretty=*/true);
    writePostmortem(w, reports);
    f << '\n';
    return bool(f);
}

bool
readPostmortem(const obs::JsonValue &doc,
               std::vector<InvariantReport> &out)
{
    out.clear();
    const obs::JsonValue *pm = doc.find("postmortem");
    if (pm == nullptr)
        return false;
    const obs::JsonValue *reports = pm->find("reports");
    if (reports == nullptr || !reports->isArray())
        return false;
    for (const obs::JsonValue &v : reports->array()) {
        if (!v.isObject())
            return false;
        InvariantReport r;
        r.device = std::size_t(v.numberOr("device", 0));
        if (!invariantKindFromName(v.strOr("kind", ""), r.kind))
            return false;
        const obs::JsonValue *sab = v.find("sabotaged");
        r.sabotaged = sab != nullptr && sab->isBool() && sab->boolean();
        r.deviceVersion = u64(v.numberOr("device_version", 0));
        r.serverVersion = u64(v.numberOr("server_version", 0));
        r.deviceDigest = u32(v.numberOr("device_digest", 0));
        r.serverDigest = u32(v.numberOr("server_digest", 0));
        r.corruptCaught = u64(v.numberOr("corrupt_caught", 0));
        r.corruptInjected = u64(v.numberOr("corrupt_injected", 0));
        const obs::JsonValue *chain = v.find("chain");
        if (chain == nullptr || !readSyncEvents(*chain, r.chain))
            return false;
        out.push_back(std::move(r));
    }
    return true;
}

} // namespace pc::harness
