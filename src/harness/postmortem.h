/**
 * @file
 * Postmortem engine: explained chaos invariant violations.
 *
 * A chaos run used to report failures as a bare count
 * (FleetRunResult::invariantViolations). With the per-device flight
 * recorder attached, the fold can do better: when a device trips an
 * invariant, it assembles the device's recent causal event chain —
 * device- and server-tier stages of its syncs, in causal order — plus
 * the version/digest evidence from both tiers into a typed
 * InvariantReport. Reports are built in device-index order during the
 * deterministic fold, so the postmortem artifact is byte-identical at
 * every thread count, like the rest of the fleet telemetry.
 *
 * writePostmortemFile() is the artifact the chaos bench ships and CI
 * diffs across thread counts; tools/trace_explain reads it back and
 * prints per-stage critical-path breakdowns of the implicated syncs.
 */

#ifndef PC_HARNESS_POSTMORTEM_H
#define PC_HARNESS_POSTMORTEM_H

#include <string>
#include <vector>

#include "obs/causal.h"
#include "obs/json.h"

namespace pc::harness {

/** Which chaos invariant a device tripped. */
enum class InvariantKind
{
    NonMonotoneVersion, ///< Community version moved backwards.
    UncaughtCorruption, ///< Injected flips != frames caught by CRC.
    DigestMismatch,     ///< Synced device table != server model.
};

/** Display name ("non_monotone_version", ...). */
const char *invariantKindName(InvariantKind k);

/**
 * One explained invariant violation: the verdict, the two-tier
 * version/digest evidence, and the device's causal event chain (the
 * flight-recorder window, spanning both tiers of every recent sync).
 */
struct InvariantReport
{
    std::size_t device = 0;
    InvariantKind kind = InvariantKind::DigestMismatch;
    /** Chaos deliberately corrupted this device (ground truth). */
    bool sabotaged = false;
    u64 deviceVersion = 0; ///< Community version the device ended at.
    u64 serverVersion = 0; ///< Latest published server version.
    u32 deviceDigest = 0;  ///< Canonical digest of the device table.
    u32 serverDigest = 0;  ///< Canonical digest of the server model.
    u64 corruptCaught = 0;   ///< Frames the device's CRC check caught.
    u64 corruptInjected = 0; ///< Payload flips the fault plans made.
    /** Flight-recorder window, oldest first (both tiers). */
    std::vector<obs::SyncEvent> chain;
};

/**
 * Serialize reports as a deterministic postmortem document:
 * {"postmortem": {"reports": [...]}} — deliberately NOT a "bench"
 * document, so bench_diff skips it while the json.tool CI sweep still
 * validates it.
 */
void writePostmortem(obs::JsonWriter &w,
                     const std::vector<InvariantReport> &reports);

/** writePostmortem into a file. @return False on I/O failure. */
bool writePostmortemFile(const std::string &path,
                         const std::vector<InvariantReport> &reports);

/**
 * Parse a writePostmortem() document back (tools/trace_explain).
 * @return False on shape mismatch.
 */
bool readPostmortem(const obs::JsonValue &doc,
                    std::vector<InvariantReport> &out);

} // namespace pc::harness

#endif // PC_HARNESS_POSTMORTEM_H
