#include "harness/workbench.h"

#include "util/strings.h"
#include "util/table.h"

namespace pc::harness {

void
printCounterReport(const std::string &title, const CounterBag &bag)
{
    AsciiTable t(title);
    t.header({"counter", "count"});
    for (const auto &[name, value] : bag.items())
        t.row({name, strformat("%llu", (unsigned long long)value)});
    t.print();
}

void
printMetricsReport(const std::string &title,
                   const obs::MetricsSnapshot &snap)
{
    AsciiTable counters(title + " — counters");
    counters.header({"counter", "count"});
    for (const auto &[name, value] : snap.counters) {
        if (value == 0)
            continue;
        counters.row({name,
                      strformat("%llu", (unsigned long long)value)});
    }
    counters.print();

    if (!snap.gauges.empty()) {
        AsciiTable gauges(title + " — gauges");
        gauges.header({"gauge", "value"});
        for (const auto &[name, value] : snap.gauges)
            gauges.row({name, strformat("%.3f", value)});
        gauges.print();
    }

    if (!snap.histograms.empty()) {
        AsciiTable hists(title + " — histograms");
        hists.header({"histogram", "count", "mean", "p50", "p90", "p99",
                      "max"});
        for (const auto &h : snap.histograms) {
            if (h.count == 0)
                continue;
            hists.row({h.name,
                       strformat("%llu", (unsigned long long)h.count),
                       strformat("%.3f", h.mean),
                       strformat("%.3f", h.p50),
                       strformat("%.3f", h.p90),
                       strformat("%.3f", h.p99),
                       strformat("%.3f", h.max)});
        }
        hists.print();
    }
}

WorkbenchConfig
smallWorkbenchConfig()
{
    WorkbenchConfig cfg;
    cfg.universe.navResults = 8'000;
    cfg.universe.nonNavResults = 32'000;
    cfg.universe.navHead = 800;
    cfg.universe.nonNavHead = 800;
    // Keep the habit heads proportional to the standard world (6% of
    // the nav pool, 1% of the non-nav pool) so hit-rate behaviour
    // scales down faithfully.
    cfg.universe.habitNavHead = 480;
    cfg.universe.habitNonNavHead = 320;
    cfg.universe.trendStride = 30;
    cfg.communityUsers = 3'000;
    return cfg;
}

Workbench::Workbench(const WorkbenchConfig &cfg)
    : cfg_(cfg)
{
    universe_ = std::make_unique<workload::QueryUniverse>(cfg_.universe);

    workload::LogGenConfig lg;
    lg.seed = cfg_.seed;
    lg.numUsers = cfg_.communityUsers;
    loggen_ = std::make_unique<workload::LogGenerator>(
        *universe_, cfg_.population, lg);

    buildLog_ = std::make_unique<workload::SearchLog>(
        loggen_->generateMonth());
    triplets_ = std::make_unique<logs::TripletTable>(
        logs::TripletTable::fromLog(*buildLog_));

    core::CacheContentBuilder builder(*universe_);
    core::ContentPolicy policy;
    policy.kind = core::ThresholdKind::VolumeShare;
    policy.volumeShare = cfg_.cacheShare;
    cache_ = std::make_unique<core::CacheContents>(
        builder.build(*triplets_, policy));
}

workload::SearchLog
Workbench::nextCommunityMonth()
{
    return loggen_->generateMonth();
}

} // namespace pc::harness
