/**
 * @file
 * Discrete-event core for the fleet harness.
 *
 * The epoch-stepped harness advances every device one month at a
 * time; this engine replaces that outer loop with a global event
 * queue so sub-epoch structure — intra-day query bursts, staggered
 * sync storms, mid-month outages and reconnect herds — becomes
 * expressible. Two layers:
 *
 *  - **EventQueue<Payload>** — a binary min-heap of (key, payload)
 *    entries keyed by `EventKey{time, device, seq}`. `seq` is a
 *    global push counter, so two events at the same instant on the
 *    same device pop in exactly the order they were scheduled, and
 *    events tied on time across devices pop in device-index order.
 *    That total order is the engine's whole determinism story: no
 *    wall clocks, no pointers, no iteration over hashed containers —
 *    a fixed schedule replays the same dispatch sequence on any
 *    machine. cancel() is lazy (the entry is dropped when it
 *    surfaces), so cancellation is O(1) and the heap shape stays a
 *    pure function of the push sequence.
 *
 *  - **EventCore** — the dispatch loop: continuations scheduled at a
 *    (time, device) pair run in key order; a running continuation may
 *    schedule further events (re-entrancy is the normal case — a
 *    query arrival schedules the next arrival) or cancel pending
 *    ones. Scheduling into the past clamps to now(): sim time never
 *    moves backwards, which the fleet fold and every TimeSeries
 *    window rely on.
 *
 * Determinism rules (see DESIGN.md "Event-driven fleet"): handlers
 * must derive everything from sim state and seeded RNG streams;
 * the tie-break key is (time, device, seq); per-device telemetry is
 * still folded in device-index order by the harness, so artifacts
 * stay byte-identical at any worker-thread count.
 */

#ifndef PC_HARNESS_EVENT_CORE_H
#define PC_HARNESS_EVENT_CORE_H

#include <algorithm>
#include <cstddef>
#include <functional>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/types.h"

namespace pc::harness {

/**
 * Total order of scheduled events: time, then device index, then
 * global push sequence. Every pair of events compares strictly —
 * `seq` is unique — so the pop order is a total function of the push
 * history.
 */
struct EventKey
{
    SimTime time = 0;
    std::size_t device = 0;
    u64 seq = 0;
};

constexpr bool
operator<(const EventKey &a, const EventKey &b)
{
    if (a.time != b.time)
        return a.time < b.time;
    if (a.device != b.device)
        return a.device < b.device;
    return a.seq < b.seq;
}

constexpr bool
operator==(const EventKey &a, const EventKey &b)
{
    return a.time == b.time && a.device == b.device && a.seq == b.seq;
}

/**
 * Binary-heap priority queue of (EventKey, Payload). See the file
 * comment for the ordering and cancellation contract. Not
 * thread-safe by design: the fleet harness runs one queue per device
 * world (or one per single-threaded run) — sharing a queue across
 * workers would reintroduce scheduling-order nondeterminism.
 */
template <typename Payload>
class EventQueue
{
  public:
    /** Token returned by push(), accepted by cancel(). */
    using Handle = u64;

    /** One popped event. */
    struct Event
    {
        EventKey key;
        Payload payload;
    };

    /** Schedule `payload` at (time, device). O(log n). */
    Handle
    push(SimTime time, std::size_t device, Payload payload)
    {
        Entry e;
        e.key.time = time;
        e.key.device = device;
        e.key.seq = nextSeq_++;
        e.payload = std::move(payload);
        const Handle h = e.key.seq;
        heap_.push_back(std::move(e));
        std::push_heap(heap_.begin(), heap_.end(), later);
        live_.insert(h);
        return h;
    }

    /**
     * Cancel a pending event. Lazy: the heap entry is skipped when it
     * reaches the top. @return False if the handle was never issued,
     * already popped, or already cancelled.
     */
    bool
    cancel(Handle h)
    {
        return live_.erase(h) != 0;
    }

    /** Pending (non-cancelled) events. */
    std::size_t size() const { return live_.size(); }

    /** True when no pending events remain. */
    bool empty() const { return live_.empty(); }

    /**
     * Pop the earliest pending event (cancelled entries are discarded
     * on the way). @return Empty when the queue is drained.
     */
    std::optional<Event>
    pop()
    {
        while (!heap_.empty()) {
            std::pop_heap(heap_.begin(), heap_.end(), later);
            Entry e = std::move(heap_.back());
            heap_.pop_back();
            if (live_.erase(e.key.seq) != 0) {
                Event out;
                out.key = e.key;
                out.payload = std::move(e.payload);
                return out;
            }
        }
        return std::nullopt;
    }

  private:
    struct Entry
    {
        EventKey key;
        Payload payload;
    };

    /** std::push_heap builds a max-heap; invert to pop earliest. */
    static bool
    later(const Entry &a, const Entry &b)
    {
        return b.key < a.key;
    }

    std::vector<Entry> heap_;
    std::unordered_set<Handle> live_; ///< Membership only — never iterated.
    u64 nextSeq_ = 0;
};

/**
 * The dispatch engine: continuations in a single EventQueue, run to
 * exhaustion. One EventCore per device world in the parallel fleet
 * (workers share nothing), or one for a whole single-threaded
 * scenario.
 */
class EventCore
{
  public:
    /** What a continuation learns about its own dispatch. */
    struct EventInfo
    {
        SimTime time = 0;      ///< Scheduled (possibly clamped) time.
        std::size_t device = 0;
        u64 seq = 0;
    };

    using Continuation = std::function<void(EventCore &, const EventInfo &)>;
    using Handle = EventQueue<Continuation>::Handle;

    /**
     * Schedule `fn` at (time, device). Times before now() clamp to
     * now() — sim time never runs backwards — and the continuation
     * then runs after every event already pending at now().
     */
    Handle schedule(SimTime time, std::size_t device, Continuation fn);

    /** Cancel a pending continuation (see EventQueue::cancel). */
    bool cancel(Handle h);

    /**
     * Dispatch until the queue is empty or stop() is called.
     * Continuations may schedule() and cancel() freely (re-entrant).
     * Safe to call again after it returns: run() resumes with
     * whatever is pending.
     */
    void run();

    /** Ask the running loop to return after the current continuation. */
    void stop() { stopped_ = true; }

    /** Time of the most recently dispatched event. */
    SimTime now() const { return now_; }

    /** Pending continuations. */
    std::size_t pending() const { return queue_.size(); }

    /** Continuations dispatched so far. */
    u64 dispatched() const { return dispatched_; }

  private:
    EventQueue<Continuation> queue_;
    SimTime now_ = 0;
    u64 dispatched_ = 0;
    bool stopped_ = false;
};

} // namespace pc::harness

#endif // PC_HARNESS_EVENT_CORE_H
