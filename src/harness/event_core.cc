#include "harness/event_core.h"

namespace pc::harness {

EventCore::Handle
EventCore::schedule(SimTime time, std::size_t device, Continuation fn)
{
    // Clamp instead of asserting: a handler that computes an arrival
    // just behind its own dispatch time (retry backoff arithmetic,
    // clamped burst windows) schedules "immediately after everything
    // already due now", which is the only sane meaning of a past
    // timestamp in a monotone simulation.
    if (time < now_)
        time = now_;
    return queue_.push(time, device, std::move(fn));
}

bool
EventCore::cancel(Handle h)
{
    return queue_.cancel(h);
}

void
EventCore::run()
{
    stopped_ = false;
    while (!stopped_) {
        auto ev = queue_.pop();
        if (!ev.has_value())
            break;
        now_ = ev->key.time;
        ++dispatched_;
        EventInfo info;
        info.time = ev->key.time;
        info.device = ev->key.device;
        info.seq = ev->key.seq;
        // The continuation may schedule() into the queue we are
        // draining (the normal case) or cancel() pending handles —
        // both touch only the queue, never this dispatch frame.
        ev->payload(*this, info);
    }
}

} // namespace pc::harness
