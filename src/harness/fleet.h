/**
 * @file
 * Fleet runner: many simulated devices, one telemetry roll-up.
 *
 * Drives N independent MobileDevices — each with its own sampled user
 * profile, query stream, metric registry and (optionally) a fault
 * plan for an injected mid-run outage episode — and reduces them
 * through a FleetCollector into per-class and fleet-wide registries,
 * windowed time series (one window per simulated month) and an
 * anomaly scan.
 *
 * Parallelism: device indices are sharded across a pool of
 * `FleetRunConfig::threads` workers over a bounded server::WorkQueue.
 * Each worker simulates whole devices in a private world (device,
 * stream, fault plan, registry) and hands back per-device telemetry:
 * the per-window registry snapshots, the final registry, and — when a
 * cloud service is attached — the deferred accounting of its monthly
 * syncs (the sync itself runs against the service read-only, see
 * CloudUpdateService::syncDetached). The reducing thread folds those
 * results in strict device-index order through the one FleetCollector
 * and replays the sync accounting in the same order, so every
 * collector/registry operation happens in exactly the sequence the
 * sequential run produces. The fleet snapshot, per-class snapshots,
 * series CSVs and anomaly scan are therefore byte-identical at every
 * thread count (tested over a threads x devices x faults x cloud
 * grid). threads == 1 runs devices in place, so only one device's
 * world is alive at a time; a thousand-device run costs one device of
 * memory plus the collector's bounded series. Parallel runs keep at
 * most the in-flight results (bounded queue) plus whatever the
 * in-order fold is still waiting on.
 *
 * Determinism: every device's stream/fault seeds derive from the run
 * seed and the device index, so a fixed FleetRunConfig reproduces the
 * same fleet byte for byte — at any thread count.
 */

#ifndef PC_HARNESS_FLEET_H
#define PC_HARNESS_FLEET_H

#include "device/mobile_device.h"
#include "fault/fault_plan.h"
#include "harness/workbench.h"
#include "obs/fleet.h"
#include "server/service.h"
#include "workload/stream.h"

namespace pc::harness {

/** Metric-name-safe key of a user class ("low", ..., "extreme"). */
std::string userClassKey(workload::UserClass cls);

/** Default outage episode: heavy coverage loss plus flaky exchanges. */
fault::FaultConfig defaultOutageFaults();

/** Fleet run shape. */
struct FleetRunConfig
{
    std::size_t devices = 100; ///< Simulated handsets.
    u32 months = 6;            ///< Simulated months per device.
    u64 seed = 2011;           ///< Run seed (streams + faults derive).

    /**
     * Simulation worker threads. 1 (the default) simulates devices in
     * place on the calling thread; 0 means "one per hardware thread".
     * Output bytes do not depend on this knob — only wall time does.
     * Benches wire it to --threads / PC_THREADS (bench::threadsKnob).
     */
    unsigned threads = 1;

    /**
     * Outage episode: months [outageStartMonth, outageStartMonth +
     * outageMonths) run with `outageFaults` attached; 0 months
     * disables injection entirely.
     */
    u32 outageStartMonth = 0;
    u32 outageMonths = 0;
    fault::FaultConfig outageFaults = defaultOutageFaults();

    device::DeviceConfig device{}; ///< Per-device constants.

    /**
     * Optional cloud update service. When set, devices do NOT get the
     * workbench's one-shot community push; instead each device syncs
     * to the service's latest model version at the start of every
     * month over 3G — full install on first contact, deltas after —
     * under whatever fault plan the month carries (a sync that fails
     * in an outage month leaves the device on its stale model), and
     * the service's "server.*" metrics fold into the collector's
     * fleet registry after the run. nullptr (the default) preserves
     * the original behaviour byte for byte.
     */
    server::CloudUpdateService *cloud = nullptr;
};

/** Scalar outcome of a fleet run (series live in the collector). */
struct FleetRunResult
{
    std::size_t devices = 0;
    u64 queries = 0;
    u64 cacheHits = 0;
    u64 degradedServes = 0;
    u64 cloudSyncs = 0;        ///< Successful community syncs (cloud set).
    u64 cloudSyncFailures = 0; ///< Syncs that exhausted their retries.
};

/**
 * Run the fleet against `wb`'s world, reducing into `collector`. The
 * collector must have been constructed with a window width of one
 * month (workload::kMonth) for the outage episode to land in its own
 * windows; other widths roll up correspondingly coarser.
 */
FleetRunResult runFleet(const Workbench &wb, const FleetRunConfig &cfg,
                        obs::FleetCollector &collector);

} // namespace pc::harness

#endif // PC_HARNESS_FLEET_H
