/**
 * @file
 * Fleet runner: many simulated devices, one telemetry roll-up.
 *
 * Drives N independent MobileDevices — each with its own sampled user
 * profile, query stream, metric registry and (optionally) a fault
 * plan for an injected mid-run outage episode — and reduces them
 * through a FleetCollector into per-class and fleet-wide registries,
 * windowed time series (one window per simulated month) and an
 * anomaly scan.
 *
 * Parallelism: device indices are sharded across a pool of
 * `FleetRunConfig::threads` workers over a bounded server::WorkQueue.
 * Each worker simulates whole devices in a private world (device,
 * stream, fault plan, registry) and hands back per-device telemetry:
 * the per-window registry snapshots, the final registry, and — when a
 * cloud service is attached — the deferred accounting of its monthly
 * syncs (the sync itself runs against the service read-only, see
 * CloudUpdateService::syncDetached). The reducing thread folds those
 * results in strict device-index order through the one FleetCollector
 * and replays the sync accounting in the same order, so every
 * collector/registry operation happens in exactly the sequence the
 * sequential run produces. The fleet snapshot, per-class snapshots,
 * series CSVs and anomaly scan are therefore byte-identical at every
 * thread count (tested over a threads x devices x faults x cloud
 * grid). threads == 1 runs devices in place, so only one device's
 * world is alive at a time; a thousand-device run costs one device of
 * memory plus the collector's bounded series. Parallel runs keep at
 * most the in-flight results (bounded queue) plus whatever the
 * in-order fold is still waiting on.
 *
 * Determinism: every device's stream/fault seeds derive from the run
 * seed and the device index, so a fixed FleetRunConfig reproduces the
 * same fleet byte for byte — at any thread count.
 */

#ifndef PC_HARNESS_FLEET_H
#define PC_HARNESS_FLEET_H

#include "device/mobile_device.h"
#include "fault/fault_plan.h"
#include "harness/postmortem.h"
#include "harness/workbench.h"
#include "obs/fleet.h"
#include "server/service.h"
#include "workload/stream.h"

namespace pc::harness {

/** Metric-name-safe key of a user class ("low", ..., "extreme"). */
std::string userClassKey(workload::UserClass cls);

/** Default outage episode: heavy coverage loss plus flaky exchanges. */
fault::FaultConfig defaultOutageFaults();

/**
 * Canonical CRC-32 digest of a content selection: pairs hashed the
 * way the device table stores them (query fnv, url hash, score,
 * accessed=false), sorted. Two digests compare equal iff the
 * selections install to identical device tables.
 */
u32 contentsDigest(const core::CacheContents &contents,
                   const workload::QueryUniverse &universe);

/**
 * The same canonical digest computed from a live device table (via
 * the wire codec, so it sees exactly the persisted pair state). A
 * CommunityOnly device that honestly holds server model v satisfies
 * deviceTableDigest(dev) == contentsDigest(model(v).contents).
 */
u32 deviceTableDigest(const core::PocketSearch &ps);

/**
 * Seeded chaos layered on a fleet run, plus the invariant checker
 * that proves the sync path survived it (see runFleet). When enabled,
 * devices run in CommunityOnly mode — personalization off — so that
 * after any successful sync the device table must be *byte-identical*
 * to the server model at the synced version, which is exactly what
 * the checker asserts. Chaos replaces the outage-episode fault
 * attachment for the run; everything stays a pure function of (device
 * index, month, config), so chaos runs are byte-deterministic at any
 * thread count, and a disabled ChaosConfig changes nothing at all.
 */
struct ChaosConfig
{
    bool enabled = false;

    /**
     * Correlated outage storm: months [stormStartMonth,
     * stormStartMonth + stormMonths) run every device's radio fully
     * dead (exchangeFailureRate 1), so the first month after the
     * storm is a fleet-wide thundering-herd reconnect.
     */
    u32 stormStartMonth = 1;
    u32 stormMonths = 1;

    /**
     * Bit-flip storm: per-delivery payload corruption rate applied to
     * every sync outside storm months (inside them nothing is ever
     * delivered). The CRC frame must catch every flip.
     */
    double payloadCorruptRate = 0.0;

    /**
     * Version-skew cohort: every skewEvery-th device (0 disables)
     * starts claiming a model version it never installed. Cohort
     * members alternate between an in-window claim (the service's
     * oldest version — the incremental delta will not fit the empty
     * table, forcing transactional rejection and, after
     * kBadDeltaEscalation strikes, a full-install escalation) and an
     * off-window claim (one below the window — the service answers
     * with a full install immediately).
     */
    u32 skewEvery = 0;

    /**
     * Deterministic admission control for the reconnect herd: device
     * i may sync in month m only if i < herdBudgetPerMonth * (number
     * of non-storm months in [0, m]). 0 disables shedding. The rule
     * is device-local, so workers need no shared admission state and
     * telemetry stays byte-identical at any thread count; shed syncs
     * are replayed into the service registry ("server.sync.shed") in
     * device-index order like every other accounting.
     */
    u64 herdBudgetPerMonth = 0;

    /**
     * Deliberate silent sabotage: after its monthly loop, every
     * sabotageEvery-th device (0 disables) that synced successfully
     * gets one cached pair's score silently bumped — a corruption no
     * CRC frame ever saw, so the digest invariant MUST trip and the
     * postmortem engine must explain it. This is the ground truth the
     * postmortem tests gate on: violations == sabotaged devices, each
     * with a causal chain spanning both tiers.
     */
    u32 sabotageEvery = 0;
};

/**
 * Which engine drives each device's simulated horizon.
 *
 * `EpochStepped` (the default) is the original month-granular loop.
 * `EventDriven` replays the *same* schedule through the discrete-event
 * core (harness/event_core.h): month begins, query arrivals, month
 * ends become continuations in a per-device event queue keyed by
 * (time, deviceIndex, seq). With an epoch-granular schedule — i.e.
 * `flashCrowd` disabled — the two engines execute the identical
 * operation sequence per device, so every artifact (snapshots, series
 * and anomaly CSVs, postmortems, BENCH JSON) is byte-identical
 * between them at any thread count; fleet_differential_test gates
 * that over a devices x months x threads x chaos grid. Only the
 * event engine can express sub-epoch structure (FlashCrowdConfig).
 */
enum class FleetEngine
{
    EpochStepped,
    EventDriven,
};

/**
 * Flash-crowd query storm: the first genuinely event-driven scenario,
 * requiring `FleetRunConfig::engine == EventDriven` (the epoch
 * harness cannot represent sub-month arrivals; validation rejects the
 * combination). Per device, query arrivals become a seeded Poisson
 * process (thinning against the burst-boosted peak rate) instead of
 * the stream's evenly-spread monthly volume; the stream still supplies
 * *which* pair each arrival issues, so hot-set/repeat behaviour and
 * monthly epoch churn are unchanged. A burst window multiplies the
 * arrival rate; an optional mid-month radio outage (sub-epoch — the
 * whole point) kills the radio between OutageStart and a per-device
 * staggered Reconnect event, which drains the miss queue the moment
 * coverage returns instead of waiting for a month boundary: the
 * staggered sync storm. Everything derives from (run seed, device
 * index), so flash-crowd runs are byte-deterministic at any thread
 * count like every other fleet run.
 */
struct FlashCrowdConfig
{
    bool enabled = false;

    /** Base Poisson arrival rate, per device (events per hour). */
    double arrivalsPerHour = 2.0;

    /** Burst window [burstStart, burstStart + burstLen) — absolute
     *  sim time since run start; clamped to the horizon. */
    SimTime burstStart = 0;
    SimTime burstLen = 0;
    /** Arrival-rate multiplier inside the burst window (>= 1). */
    double burstMultiplier = 1.0;

    /** Mid-month radio outage [outageStart, outageStart + outageLen);
     *  0 length disables. Clamped to the horizon. */
    SimTime outageStart = 0;
    SimTime outageLen = 0;
    /**
     * Reconnect stagger: device i's radio comes back (and its miss
     * queue drains) at outageEnd + i * reconnectStagger — the herd
     * spreads instead of thundering. 0 reconnects everyone at once.
     */
    SimTime reconnectStagger = 0;

    /**
     * Telemetry window width for this scenario (0 = one month, the
     * epoch default). Sub-month widths give the collector intra-month
     * resolution — how the burst and the reconnect storm show up in
     * the series at all. The FleetCollector must be constructed with
     * the same width.
     */
    SimTime window = 0;
};

/** Fleet run shape. */
struct FleetRunConfig
{
    std::size_t devices = 100; ///< Simulated handsets.
    u32 months = 6;            ///< Simulated months per device.
    u64 seed = 2011;           ///< Run seed (streams + faults derive).

    /**
     * Simulation worker threads. 1 (the default) simulates devices in
     * place on the calling thread; 0 means "one per hardware thread".
     * Output bytes do not depend on this knob — only wall time does.
     * Benches wire it to --threads / PC_THREADS (bench::threadsKnob).
     */
    unsigned threads = 1;

    /**
     * Outage episode: months [outageStartMonth, outageStartMonth +
     * outageMonths) run with `outageFaults` attached; 0 months
     * disables injection entirely.
     */
    u32 outageStartMonth = 0;
    u32 outageMonths = 0;
    fault::FaultConfig outageFaults = defaultOutageFaults();

    device::DeviceConfig device{}; ///< Per-device constants.

    /**
     * Optional cloud update service. When set, devices do NOT get the
     * workbench's one-shot community push; instead each device syncs
     * to the service's latest model version at the start of every
     * month over 3G — full install on first contact, deltas after —
     * under whatever fault plan the month carries (a sync that fails
     * in an outage month leaves the device on its stale model), and
     * the service's "server.*" metrics fold into the collector's
     * fleet registry after the run. nullptr (the default) preserves
     * the original behaviour byte for byte.
     */
    server::CloudUpdateService *cloud = nullptr;

    /**
     * Chaos schedule + invariant checking (requires `cloud`).
     * Disabled by default; see ChaosConfig.
     */
    ChaosConfig chaos{};

    /**
     * Flight-recorder ring capacity for chaos runs (events per
     * device). Chaos attaches a recorder to every device so invariant
     * violations come back explained (see postmortem.h); chaos off
     * attaches nothing and records nothing.
     */
    std::size_t recorderCapacity = obs::FlightRecorder::kDefaultCapacity;

    /**
     * Simulation engine (see FleetEngine). EpochStepped keeps every
     * previously committed baseline byte-identical; EventDriven with
     * `flashCrowd` disabled reproduces them too — differentially
     * gated — and with `flashCrowd` enabled opens the sub-epoch
     * scenarios only an event queue can express.
     */
    FleetEngine engine = FleetEngine::EpochStepped;

    /** Flash-crowd scenario (EventDriven only; see FlashCrowdConfig). */
    FlashCrowdConfig flashCrowd{};

    /**
     * Attach a health accountant (obs/health.h) to every device: the
     * fleet snapshot and windowed series gain `health.*` busy-time /
     * demand ledgers for the bottleneck analyzer, still folded in
     * device-index order so artifacts stay byte-identical at any
     * thread count. Off (the default) registers nothing and keeps
     * every pre-existing baseline byte-identical, like `cloud`.
     */
    bool health = false;
};

/** Scalar outcome of a fleet run (series live in the collector). */
struct FleetRunResult
{
    std::size_t devices = 0;
    u64 queries = 0;
    u64 cacheHits = 0;
    u64 degradedServes = 0;
    u64 cloudSyncs = 0;        ///< Successful community syncs (cloud set).
    u64 cloudSyncFailures = 0; ///< Syncs that exhausted their retries.
    u64 cloudSyncsShed = 0;    ///< Syncs dropped by admission control.
    u64 reconnectSyncs = 0;    ///< Mid-month miss-queue drains fired by
                               ///< flash-crowd reconnect events.
    u64 corruptRejected = 0;   ///< Delta frames the CRC check rejected.
    u64 rejectedDeltas = 0;    ///< Verified deltas failing validation.
    u64 escalatedFullInstalls = 0; ///< Bad-streak full-install syncs.
    u64 devicesVerified = 0;   ///< Devices digest-checked against the
                               ///< server model (chaos runs only).
    u64 devicesSabotaged = 0;  ///< Tables chaos silently corrupted —
                               ///< the postmortem ground truth.
    /**
     * Chaos invariant trips: a successfully synced device whose table
     * is not byte-identical to the server model, a non-monotone
     * version history, or an injected corruption that was not caught.
     * Always 0 unless the sync path is broken (or chaos sabotage made
     * it so deliberately); tests and the chaos bench gate on it.
     */
    u64 invariantViolations = 0;

    /**
     * One explained report per invariant trip, in device-index order
     * (byte-deterministic at any thread count). Chaos runs only —
     * empty whenever invariantViolations is 0.
     */
    std::vector<InvariantReport> invariantReports;

    /**
     * Why the run refused to start (validateFleetRunConfig). Empty on
     * every run that executed — including legitimately empty ones
     * (0 devices, 0 months). A non-empty error means nothing ran and
     * no collector/service state was touched.
     */
    std::string error;
};

/**
 * Validate a FleetRunConfig before running it. @return Empty when the
 * config is runnable (possibly as a clean empty run — 0 devices or 0
 * months execute nothing and report zeros); otherwise a one-line
 * reason. Degenerate schedules that clamp harmlessly (outage episodes
 * longer than the horizon, burst windows straddling the end) are
 * valid; combinations the engines cannot honor (chaos without a cloud
 * service, flash crowd on the epoch engine, non-finite or negative
 * rates) are errors. runFleet() checks this itself and returns the
 * reason in FleetRunResult::error instead of asserting.
 */
std::string validateFleetRunConfig(const FleetRunConfig &cfg);

/**
 * Run the fleet against `wb`'s world, reducing into `collector`. The
 * collector must have been constructed with a window width of one
 * month (workload::kMonth) for the outage episode to land in its own
 * windows; other widths roll up correspondingly coarser.
 */
FleetRunResult runFleet(const Workbench &wb, const FleetRunConfig &cfg,
                        obs::FleetCollector &collector);

} // namespace pc::harness

#endif // PC_HARNESS_FLEET_H
