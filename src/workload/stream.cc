#include "workload/stream.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace pc::workload {

UserStream::UserStream(const QueryUniverse &universe,
                       const UserProfile &profile, u64 seed, u32 epoch)
    : universe_(universe), profile_(profile), rng_(seed), epoch_(epoch)
{
    pc_assert(profile_.monthlyVolume > 0, "user must submit queries");
    pc_assert(profile_.hotSetSize >= 1, "hot set cannot be empty");
    // The user's habitual pairs are drawn from community popularity:
    // everyone's habits are the popular destinations ("facebook",
    // "weather"), with an occasional personal oddity arriving through
    // the Zipf tail. Duplicates are kept — they weight the habit.
    hotSet_.reserve(profile_.hotSetSize);
    for (u32 i = 0; i < profile_.hotSetSize; ++i) {
        // The first few habits are everyone's navigational staples;
        // heavy users' additional habits diversify into topics, which
        // is what tilts their cache hits non-navigational (Figure 19).
        const double nav_share = i < 5
            ? -1.0
            : universe_.config().habitNavShare * 0.70;
        hotSet_.push_back(universe_.samplePairHabitual(
            rng_, profile_.device, nav_share, epoch_));
    }
}

void
UserStream::setEpoch(u32 epoch)
{
    if (epoch == epoch_)
        return;
    epoch_ = epoch;
    // Habit churn: with the new month's trends, a fraction of habitual
    // destinations is replaced by fresh habitual draws.
    for (std::size_t i = 0; i < hotSet_.size(); ++i) {
        if (!rng_.chance(0.25))
            continue;
        const double nav_share = i < 5
            ? -1.0
            : universe_.config().habitNavShare * 0.70;
        hotSet_[i] = universe_.samplePairHabitual(
            rng_, profile_.device, nav_share, epoch_);
    }
}

void
UserStream::beginMonth(SimTime start)
{
    monthStart_ = start;
    indexInMonth_ = 0;
}

void
UserStream::recordIssue(const PairRef &p)
{
    for (auto &h : history_) {
        if (h.pair == p) {
            ++h.count;
            return;
        }
    }
    history_.push_back({p, 1});
}

PairRef
UserStream::pickFromHistory()
{
    pc_assert(!history_.empty(), "history pick with empty history");
    // Rich-get-richer: proportional to count^repeatSkew.
    double total = 0.0;
    for (const auto &h : history_)
        total += std::pow(double(h.count), profile_.repeatSkew);
    double x = rng_.uniform() * total;
    for (const auto &h : history_) {
        x -= std::pow(double(h.count), profile_.repeatSkew);
        if (x <= 0.0)
            return h.pair;
    }
    return history_.back().pair;
}

StreamEvent
UserStream::next()
{
    StreamEvent ev;
    // Spread the month's events evenly with jitter; event k of V lands
    // around day 28*k/V.
    const double frac =
        (double(indexInMonth_) + rng_.uniform()) /
        double(profile_.monthlyVolume);
    ev.time = monthStart_ + SimTime(frac * double(kMonth));

    const double repeat_mass = 1.0 - profile_.newRate;
    const double r = rng_.uniform();
    if (r < repeat_mass * profile_.favoritesBias) {
        // Habitual visit to the hot set.
        ev.pair = hotSet_[rng_.below(hotSet_.size())];
        ev.repeatDraw = true;
    } else if (r < repeat_mass && !history_.empty()) {
        // Episodic re-find of something searched earlier.
        ev.pair = pickFromHistory();
        ev.repeatDraw = true;
    } else {
        // Fresh exploration of the community's popularity model.
        ev.pair = universe_.samplePair(rng_, profile_.device, epoch_);
        ev.repeatDraw = false;
    }
    recordIssue(ev.pair);

    ++indexInMonth_;
    ++eventsGenerated_;
    return ev;
}

std::vector<StreamEvent>
UserStream::month(SimTime start)
{
    beginMonth(start);
    std::vector<StreamEvent> out;
    out.reserve(profile_.monthlyVolume);
    for (u32 i = 0; i < profile_.monthlyVolume; ++i)
        out.push_back(next());
    return out;
}

} // namespace pc::workload
