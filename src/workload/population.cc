#include "workload/population.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace pc::workload {

std::string
userClassName(UserClass c)
{
    switch (c) {
      case UserClass::Low:
        return "Low Volume";
      case UserClass::Medium:
        return "Medium Volume";
      case UserClass::High:
        return "High Volume";
      case UserClass::Extreme:
        return "Extreme Volume";
    }
    return "?";
}

const std::vector<ClassSpec> &
table6Classes()
{
    // Table 6, verbatim; the Extreme class's open upper bound is capped
    // at 1400 so volumes can be sampled.
    static const std::vector<ClassSpec> specs = {
        {UserClass::Low, 20, 40, 0.55},
        {UserClass::Medium, 40, 140, 0.36},
        {UserClass::High, 140, 460, 0.08},
        {UserClass::Extreme, 460, 1400, 0.01},
    };
    return specs;
}

UserClass
classForVolume(u32 v)
{
    if (v >= 460)
        return UserClass::Extreme;
    if (v >= 140)
        return UserClass::High;
    if (v >= 40)
        return UserClass::Medium;
    return UserClass::Low;
}

PopulationSampler::PopulationSampler(const PopulationConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed)
{
}

u32
PopulationSampler::sampleVolume(Rng &rng, const ClassSpec &spec)
{
    // Log-uniform within the class range: within a class, lighter users
    // are still more common than heavier ones.
    const double lo = std::log(double(spec.minMonthly));
    const double hi = std::log(double(spec.maxMonthly));
    const double v = std::exp(rng.uniform(lo, hi));
    u32 vol = u32(v);
    if (vol < spec.minMonthly)
        vol = spec.minMonthly;
    if (vol >= spec.maxMonthly)
        vol = spec.maxMonthly - 1;
    return vol;
}

double
PopulationSampler::sampleNewRate(Rng &rng, UserClass cls)
{
    double base;
    if (rng.chance(cfg_.lowNewShare))
        base = rng.uniform(cfg_.lowNewMin, cfg_.lowNewMax);
    else
        base = rng.uniform(cfg_.highNewMin, cfg_.highNewMax);
    base -= cfg_.classNewRateShift[int(cls)];
    if (base < 0.02)
        base = 0.02;
    if (base > 0.98)
        base = 0.98;
    return base;
}

UserProfile
PopulationSampler::sampleUser(Rng &rng)
{
    const auto &specs = table6Classes();
    std::vector<double> weights;
    weights.reserve(specs.size());
    for (const auto &s : specs)
        weights.push_back(s.populationShare);
    const auto idx = rng.weighted(weights);
    return sampleUserOfClass(rng, specs[idx].cls);
}

UserProfile
PopulationSampler::sampleUserOfClass(Rng &rng, UserClass cls)
{
    const ClassSpec &spec = table6Classes().at(std::size_t(cls));
    UserProfile u;
    u.id = nextId_++;
    u.cls = cls;
    u.device = rng.chance(cfg_.featurephoneShare)
        ? DeviceType::Featurephone : DeviceType::Smartphone;
    u.monthlyVolume = sampleVolume(rng, spec);
    u.newRate = sampleNewRate(rng, cls);
    u.repeatSkew = 0.7;
    u.favoritesBias = 0.92;
    // Heavier users have a few more habits.
    u.hotSetSize = 4 + std::min<u32>(u.monthlyVolume / 60, 12);
    return u;
}

std::vector<UserProfile>
PopulationSampler::samplePopulation(std::size_t n)
{
    std::vector<UserProfile> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(sampleUser(rng_));
    return out;
}

} // namespace pc::workload
