#include "workload/loggen.h"

namespace pc::workload {

LogGenerator::LogGenerator(const QueryUniverse &universe,
                           const PopulationConfig &pop,
                           const LogGenConfig &cfg)
    : universe_(universe), cfg_(cfg), nextMonthStart_(cfg.monthStart)
{
    PopulationSampler sampler(pop);
    profiles_ = sampler.samplePopulation(cfg_.numUsers);
    streams_.reserve(profiles_.size());
    Rng seeder(cfg_.seed);
    for (const auto &p : profiles_)
        streams_.emplace_back(universe_, p, seeder.next());
}

SearchLog
LogGenerator::generateMonth()
{
    // Advance the trend epoch: each generated month sees slightly
    // rotated non-navigational popularity.
    for (auto &stream : streams_)
        stream.setEpoch(monthIndex_);
    SearchLog log(universe_);
    std::size_t total = 0;
    for (const auto &p : profiles_)
        total += p.monthlyVolume;
    log.reserve(total);

    for (std::size_t i = 0; i < streams_.size(); ++i) {
        auto events = streams_[i].month(nextMonthStart_);
        for (const auto &ev : events) {
            LogRecord rec;
            rec.user = profiles_[i].id;
            rec.time = ev.time;
            rec.pair = ev.pair;
            rec.device = profiles_[i].device;
            log.add(rec);
        }
    }
    nextMonthStart_ += kMonth;
    ++monthIndex_;
    log.sortByTime();
    return log;
}

} // namespace pc::workload
