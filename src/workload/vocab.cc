#include "workload/vocab.h"

#include "util/hash.h"
#include "util/logging.h"

namespace pc::workload {

namespace {

const char *const kOnsets[] = {
    "b", "c", "d", "f", "g", "h", "j", "k", "l", "m",
    "n", "p", "r", "s", "t", "v", "w", "z", "ch", "sh",
    "st", "br", "tr", "pl",
};
const char *const kVowels[] = {"a", "e", "i", "o", "u", "ai", "ou", "ee"};
const char *const kCodas[] = {"", "", "", "n", "r", "s", "t", "l", "m", "x"};

constexpr u64 kNumOnsets = sizeof(kOnsets) / sizeof(kOnsets[0]);
constexpr u64 kNumVowels = sizeof(kVowels) / sizeof(kVowels[0]);
constexpr u64 kNumCodas = sizeof(kCodas) / sizeof(kCodas[0]);

/** One syllable keyed by a hash state. */
std::string
syllable(u64 &state)
{
    std::string s;
    state = mix64(state);
    s += kOnsets[state % kNumOnsets];
    state = mix64(state + 1);
    s += kVowels[state % kNumVowels];
    state = mix64(state + 2);
    s += kCodas[state % kNumCodas];
    return s;
}

} // namespace

std::string
Vocabulary::word(u64 index)
{
    u64 state = mix64(index ^ 0x5bd1e995u);
    const u64 syllables = 2 + (mix64(state + 7) % 3); // 2..4
    std::string w;
    for (u64 i = 0; i < syllables; ++i)
        w += syllable(state);
    return w;
}

std::string
Vocabulary::domainToken(u64 index)
{
    std::string w = word(index ^ 0x00d00a17ull);
    // Occasionally append a short numeric/short suffix, as real brands do.
    const u64 h = mix64(index + 0x9137);
    if (h % 7 == 0)
        w += char('0' + int(h % 10));
    return w;
}

std::string
Vocabulary::topicPhrase(u64 index, u64 pool_size)
{
    pc_assert(pool_size >= 2, "topic pool too small");
    u64 state = mix64(index ^ 0x7091cull);
    const u64 words = 1 + state % 3; // 1..3 words
    std::string phrase;
    for (u64 i = 0; i < words; ++i) {
        state = mix64(state + i + 1);
        if (i)
            phrase += ' ';
        phrase += word(state % pool_size);
    }
    return phrase;
}

std::string
makeAlias(const std::string &canonical, AliasKind kind, u64 salt)
{
    if (canonical.size() < 4)
        return canonical + "x"; // degenerate; still a distinct string

    const u64 h = mix64(fnv1a(canonical) ^ salt);
    std::string out = canonical;

    switch (kind) {
      case AliasKind::Misspelling: {
        const std::size_t pos = 1 + std::size_t(h % (out.size() - 2));
        switch ((h >> 8) % 3) {
          case 0: // drop a character ("yotube")
            out.erase(pos, 1);
            break;
          case 1: // swap adjacent characters ("yuotube")
            std::swap(out[pos], out[pos + 1]);
            break;
          default: // double a character ("youttube")
            out.insert(pos, 1, out[pos]);
            break;
        }
        break;
      }
      case AliasKind::Shortcut: {
        // Initials of a multi-word phrase ("boa"), else a short prefix.
        std::string initials;
        bool word_start = true;
        for (char c : canonical) {
            if (c == ' ') {
                word_start = true;
            } else if (word_start) {
                initials += c;
                word_start = false;
            }
        }
        if (initials.size() >= 2) {
            out = initials;
        } else {
            out = canonical.substr(0, 3 + std::size_t(h % 2));
        }
        break;
      }
    }
    if (out == canonical)
        out += 's'; // aliases must differ from the canonical string
    return out;
}

} // namespace pc::workload
