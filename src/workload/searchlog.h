/**
 * @file
 * Search log records and containers — the synthetic stand-in for the
 * paper's m.bing.com mobile search logs.
 *
 * Each record is one successful click-through: the query string the user
 * submitted and the search result they selected (the paper's logs
 * contain exactly these two fields plus nothing personal). Records
 * reference the QueryUniverse by id; strings are materialized on demand.
 */

#ifndef PC_WORKLOAD_SEARCHLOG_H
#define PC_WORKLOAD_SEARCHLOG_H

#include <vector>

#include "workload/universe.h"

namespace pc::workload {

/** One click-through event in the log. */
struct LogRecord
{
    u64 user = 0;          ///< Anonymized user id.
    SimTime time = 0;      ///< Timestamp within the log window.
    PairRef pair{0, 0};    ///< (query, clicked result).
    DeviceType device = DeviceType::Smartphone;
};

/**
 * A flat, time-ordered-per-user log plus a reference to the universe
 * that interprets its ids.
 */
class SearchLog
{
  public:
    explicit SearchLog(const QueryUniverse &universe)
        : universe_(&universe)
    {
    }

    /** Append one record. */
    void add(const LogRecord &rec) { records_.push_back(rec); }

    /** All records. */
    const std::vector<LogRecord> &records() const { return records_; }

    /** Record count. */
    std::size_t size() const { return records_.size(); }

    /** The universe interpreting query/result ids. */
    const QueryUniverse &universe() const { return *universe_; }

    /** Reserve capacity. */
    void reserve(std::size_t n) { records_.reserve(n); }

    /** Sort records by (user, time) for per-user scans. */
    void sortByUserTime();

    /** Sort records by time (global replay order). */
    void sortByTime();

  private:
    const QueryUniverse *universe_;
    std::vector<LogRecord> records_;
};

} // namespace pc::workload

#endif // PC_WORKLOAD_SEARCHLOG_H
