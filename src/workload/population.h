/**
 * @file
 * User population model (Table 6 of the paper).
 *
 * Mobile searchers fall into four monthly-volume classes — Low [20,40),
 * Medium [40,140), High [140,460), Extreme [460,∞) — with population
 * shares 55/36/8/1%. Each user additionally carries a device type and a
 * personal repeat behaviour: the probability that a submitted query is
 * brand new rather than a re-issue of an earlier (query, result) pair.
 * Figure 5 of the paper pins that distribution: ~50% of users submit a
 * new query at most 30% of the time, and the mean repeat rate is 56.5%.
 * Heavier users repeat more (Section 6.2.1).
 */

#ifndef PC_WORKLOAD_POPULATION_H
#define PC_WORKLOAD_POPULATION_H

#include <string>
#include <vector>

#include "util/rng.h"
#include "workload/universe.h"

namespace pc::workload {

/** Monthly-query-volume classes of Table 6. */
enum class UserClass
{
    Low,
    Medium,
    High,
    Extreme,
};

/** Display name ("Low Volume" etc.). */
std::string userClassName(UserClass c);

/** Static description of one Table 6 row. */
struct ClassSpec
{
    UserClass cls;
    u32 minMonthly;      ///< Inclusive lower bound of monthly volume.
    u32 maxMonthly;      ///< Exclusive upper bound.
    double populationShare; ///< Fraction of users in this class.
};

/** The four rows of Table 6 (Extreme capped at 1400 for sampling). */
const std::vector<ClassSpec> &table6Classes();

/** Behavioural parameters of one synthetic user. */
struct UserProfile
{
    u64 id = 0;
    UserClass cls = UserClass::Low;
    DeviceType device = DeviceType::Smartphone;
    u32 monthlyVolume = 20;  ///< Queries this user submits per month.
    double newRate = 0.4;    ///< P(event is a fresh community draw).
    double repeatSkew = 1.3; ///< Rich-get-richer exponent on re-picks.
    double favoritesBias = 0.55; ///< Share of repeats going to the hot set.
    u32 hotSetSize = 6;      ///< Habitual pairs ("couple of tens" max).
};

/** Population-level knobs. */
struct PopulationConfig
{
    u64 seed = 7;
    /** Fraction of users on featurephones (2009-era mix). */
    double featurephoneShare = 0.5;
    /**
     * Mixture describing the per-user new-query rate: with probability
     * `lowNewShare` the user is a habitual repeater with newRate in
     * [lowNewMin, lowNewMax); otherwise newRate is in
     * [highNewMin, highNewMax). Calibrated to Figure 5.
     */
    double lowNewShare = 0.55;
    double lowNewMin = 0.03, lowNewMax = 0.22;
    double highNewMin = 0.28, highNewMax = 1.00;
    /** newRate reduction per class (heavier users repeat more). */
    double classNewRateShift[4] = {0.0, 0.01, 0.03, 0.05};
};

/**
 * Samples user profiles matching Table 6 and Figure 5.
 */
class PopulationSampler
{
  public:
    explicit PopulationSampler(const PopulationConfig &cfg);

    /** Draw one user (class sampled from the Table 6 shares). */
    UserProfile sampleUser(Rng &rng);

    /** Draw one user of a forced class (for per-class experiments). */
    UserProfile sampleUserOfClass(Rng &rng, UserClass cls);

    /** Draw a whole population. */
    std::vector<UserProfile> samplePopulation(std::size_t n);

    /** Configuration. */
    const PopulationConfig &config() const { return cfg_; }

  private:
    u32 sampleVolume(Rng &rng, const ClassSpec &spec);
    double sampleNewRate(Rng &rng, UserClass cls);

    PopulationConfig cfg_;
    Rng rng_;
    u64 nextId_ = 1;
};

/** Class a given monthly volume falls into; volumes <20 map to Low. */
UserClass classForVolume(u32 monthly_volume);

} // namespace pc::workload

#endif // PC_WORKLOAD_POPULATION_H
