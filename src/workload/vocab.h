/**
 * @file
 * Deterministic synthetic vocabulary for queries and URLs.
 *
 * We cannot ship m.bing.com's real query strings, so the workload
 * generator synthesizes pronounceable words: domain names for
 * navigational targets ("youtube"-like), topic words for
 * non-navigational phrases ("michael jackson"-like), and realistic
 * misspellings/shortcuts of both (the paper's "yotube"/"boa" effect,
 * Section 4.1).
 */

#ifndef PC_WORKLOAD_VOCAB_H
#define PC_WORKLOAD_VOCAB_H

#include <string>
#include <vector>

#include "util/rng.h"

namespace pc::workload {

/**
 * Deterministic word factory. Word i is always the same string for a
 * given style, so universes are reproducible without storing dictionaries.
 */
class Vocabulary
{
  public:
    /** Pronounceable word, 2-4 syllables, uniquely determined by `index`. */
    static std::string word(u64 index);

    /** Domain-style token (word + optional short suffix). */
    static std::string domainToken(u64 index);

    /** 1-3 word topic phrase determined by `index` over a word pool. */
    static std::string topicPhrase(u64 index, u64 pool_size);
};

/** Kinds of query corruption observed in mobile logs (Section 4.1). */
enum class AliasKind
{
    Misspelling, ///< e.g. "yotube" for "youtube" (dropped/swapped char).
    Shortcut,    ///< e.g. "boa" for "bank of america" (initials/prefix).
};

/**
 * Produce a deterministic alias of a query string.
 *
 * @param canonical The well-spelled query.
 * @param kind Corruption style.
 * @param salt Varies the corruption so one query can have several aliases.
 * @return The alias; falls back to a prefix if the string is too short to
 *         corrupt in the requested style.
 */
std::string makeAlias(const std::string &canonical, AliasKind kind,
                      u64 salt);

} // namespace pc::workload

#endif // PC_WORKLOAD_VOCAB_H
