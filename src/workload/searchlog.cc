#include "workload/searchlog.h"

#include <algorithm>

namespace pc::workload {

void
SearchLog::sortByUserTime()
{
    std::sort(records_.begin(), records_.end(),
              [](const LogRecord &a, const LogRecord &b) {
                  if (a.user != b.user)
                      return a.user < b.user;
                  return a.time < b.time;
              });
}

void
SearchLog::sortByTime()
{
    std::stable_sort(records_.begin(), records_.end(),
                     [](const LogRecord &a, const LogRecord &b) {
                         return a.time < b.time;
                     });
}

} // namespace pc::workload
