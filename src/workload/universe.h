/**
 * @file
 * The synthetic query/search-result universe.
 *
 * Models the structural facts the paper's log analysis reports
 * (Section 4 and 5.1):
 *
 *  - clicked-result popularity is head-heavy: the top ~4000 results carry
 *    ~60% of click volume (Figure 4b);
 *  - there are ~1.5 distinct query strings per result (6000 queries vs
 *    4000 results for the same 60% share) because users misspell and
 *    abbreviate ("yotube", "boa");
 *  - navigational queries are far more concentrated than
 *    non-navigational ones (top 5000 nav ≈ 90% of nav volume; top 5000
 *    non-nav < 30%);
 *  - some queries legitimately map to several results ("michael
 *    jackson" -> imdb bio and azlyrics, Table 3);
 *  - featurephone traffic is more concentrated than smartphone traffic.
 *
 * The universe separates navigational and non-navigational pools, each
 * with its own truncated-Zipf popularity, and calibrates the exponents
 * from the paper's published head-share targets.
 */

#ifndef PC_WORKLOAD_UNIVERSE_H
#define PC_WORKLOAD_UNIVERSE_H

#include <string>
#include <vector>

#include "util/hash.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace pc::workload {

/** Device class of a log event's origin (Figure 4 series split). */
enum class DeviceType
{
    Featurephone,
    Smartphone,
};

/** Pool rank of companion results that are never rank-sampled. */
inline constexpr u32 kNoPoolRank = ~u32(0);

/** A distinct clickable search result (landing page). */
struct ResultInfo
{
    std::string url;         ///< Full address, e.g. "www.vasoti.com".
    std::string title;       ///< Hyperlink text.
    std::string description; ///< Result-page snippet.
    bool navigational;       ///< Reached mostly via navigational queries.
    /**
     * Popularity rank within the result's pool, or kNoPoolRank for
     * companion results that only receive redistributed clicks.
     */
    u32 poolRank = kNoPoolRank;
    /**
     * Queries that click through to this result, with the share of the
     * result's click volume each query carries (sums to ~1).
     */
    std::vector<std::pair<u32, double>> queries;
};

/** A distinct query string. */
struct QueryInfo
{
    std::string text; ///< Normalized (lower-case) query string.
    /** Results this query clicks through to, with selection weights. */
    std::vector<std::pair<u32, double>> results;
};

/** One (query, clicked-result) pair, the unit of caching. */
struct PairRef
{
    u32 query;
    u32 result;

    bool operator==(const PairRef &o) const = default;
};

/** Universe shape parameters. */
struct UniverseConfig
{
    u64 seed = 42;

    /** Distinct navigational landing pages. */
    u32 navResults = 40'000;
    /** Distinct non-navigational landing pages. */
    u32 nonNavResults = 160'000;

    /** Fraction of total click volume that is navigational. */
    double navVolumeShare = 0.50;

    /**
     * Head-share calibration targets (paper Figure 4): the top `head`
     * results of each pool carry `share` of that pool's volume.
     */
    u64 navHead = 5'000;
    double navHeadShare = 0.55;
    u64 nonNavHead = 5'000;
    double nonNavHeadShare = 0.06;

    /** Mean number of alias queries added per result (1.5 q/result). */
    double meanAliases = 0.3;
    /** P(tail non-nav query also maps to a second result). */
    double sharedQueryProb = 0.03;
    /** P(head non-nav query maps to a second result). Popular queries
     *  ("michael jackson") routinely split clicks across two results. */
    double sharedHeadProb = 0.85;
    /** P(head nav query also clicks through to a related non-nav page). */
    double navSharedHeadProb = 0.85;
    /** Click weight of the canonical query vs its aliases. */
    double canonicalWeight = 0.50;

    /**
     * Featurephone skew boost: featurephone draws use a Zipf exponent
     * higher by this amount (their traffic is more concentrated).
     */
    double featurephoneSkewBoost = 0.12;

    /** Probability that a habitual pair is a mainstream destination. */
    double mainstreamShare = 0.90;
    /**
     * Topic drift: each epoch (month) the top `trendStride` ranks of
     * the non-navigational pool are taken over by an epoch-specific
     * set of trending topics drawn from the deep tail ("michael
     * jackson" spikes, then fades). Navigational popularity (brands)
     * stays put; epoch 0 is undisturbed.
     */
    u32 trendStride = 150;
    /** Mainstream head sizes (pool ranks) habitual draws come from. */
    u32 habitNavHead = 2'400;
    u32 habitNonNavHead = 1'600;
    /**
     * Probability a habitual pair uses the result's canonical query:
     * routine queries are well-practiced, rarely misspelled.
     */
    double habitCanonicalBias = 0.10;
    /**
     * Navigational share of habitual draws. Routine destinations are
     * mostly navigational ("facebook", "youtube"); exploration follows
     * navVolumeShare instead.
     */
    double habitNavShare = 0.72;
};

/**
 * Immutable query/result universe plus popularity samplers.
 */
class QueryUniverse
{
  public:
    /** Build a universe deterministically from the config. */
    explicit QueryUniverse(const UniverseConfig &cfg);

    /** Number of distinct results. */
    u32 numResults() const { return u32(results_.size()); }
    /** Number of distinct queries. */
    u32 numQueries() const { return u32(queries_.size()); }

    /** Result record. */
    const ResultInfo &result(u32 id) const { return results_.at(id); }
    /** Query record. */
    const QueryInfo &query(u32 id) const { return queries_.at(id); }

    /**
     * True if the paper's navigational-query test holds: the query
     * string is a substring of the clicked URL (footnote 1).
     */
    bool isNavigationalPair(const PairRef &p) const;

    /**
     * Sample one community (query, result) click.
     *
     * @param rng Random stream.
     * @param device Featurephone draws are more concentrated.
     */
    PairRef samplePair(Rng &rng, DeviceType device,
                       u32 epoch = 0) const;

    /**
     * Sample a *habitual* pair: users' routine destinations
     * ("facebook", "weather") sit far higher in the popularity curve
     * than their exploratory searches. With probability
     * cfg.mainstreamShare this draws from the pool Zipf conditioned on
     * its mainstream head; otherwise from the full distribution (a
     * personal oddity).
     */
    /**
     * @param nav_share Override of cfg.habitNavShare for this draw
     *        (negative = use the config value). Heavy users' extra
     *        habits skew non-navigational (diversification).
     */
    PairRef samplePairHabitual(Rng &rng, DeviceType device,
                               double nav_share = -1.0,
                               u32 epoch = 0) const;

    /** Configuration the universe was built from. */
    const UniverseConfig &config() const { return cfg_; }

    /**
     * Ground-truth probability of a pair under the smartphone community
     * model (for calibration tests).
     */
    double pairProbability(const PairRef &p) const;

    /** Serialized size of a result record in the on-phone DB (bytes). */
    static Bytes recordSize(const ResultInfo &r);

  private:
    void buildResults();
    void buildQueriesAndAliases(Rng &rng);

    /** Pool-local rank -> universe result id. */
    u32 navId(u64 rank) const { return u32(rank); }
    /** Non-nav rank -> id, with the epoch's trending slice applied. */
    u32
    nonNavId(u64 rank, u32 epoch = 0) const
    {
        if (epoch == 0 || rank >= cfg_.trendStride)
            return u32(cfg_.navResults + rank);
        // Trending slice: this epoch's hot topics come from the deep
        // tail, displacing the nominal head ranks.
        const u64 half = cfg_.nonNavResults / 2;
        const u64 id =
            half + mix64(u64(epoch) * 1000003ull + rank) % half;
        return u32(cfg_.navResults + id);
    }

    /** Pick a query of a result according to click weights. */
    u32 pickQueryOf(const ResultInfo &r, u32 result_id, Rng &rng) const;

    /** Pick the clicked result of a query by its result weights. */
    u32 pickResultOf(const QueryInfo &q, Rng &rng) const;

    UniverseConfig cfg_;
    std::vector<ResultInfo> results_;
    std::vector<QueryInfo> queries_;

    double navSkew_;
    double nonNavSkew_;
    ZipfSampler navZipf_;
    ZipfSampler nonNavZipf_;
    ZipfSampler navZipfFp_;    ///< Featurephone (boosted skew).
    ZipfSampler nonNavZipfFp_;
};

} // namespace pc::workload

#endif // PC_WORKLOAD_UNIVERSE_H
