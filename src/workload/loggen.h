/**
 * @file
 * Community search-log generation.
 *
 * Produces month-long logs for a whole population — the synthetic
 * counterpart of the paper's 200M-query m.bing.com dataset (scaled
 * down). Community logs feed cache content generation and the log
 * analysis; disjoint per-user streams of a *following* month feed the
 * hit-rate replay, mirroring the paper's "cache built from the preceding
 * month, replayed on the next, non-overlapping" methodology.
 */

#ifndef PC_WORKLOAD_LOGGEN_H
#define PC_WORKLOAD_LOGGEN_H

#include <vector>

#include "workload/population.h"
#include "workload/searchlog.h"
#include "workload/stream.h"

namespace pc::workload {

/** Community log shape. */
struct LogGenConfig
{
    u64 seed = 1234;
    std::size_t numUsers = 20'000; ///< Community population size.
    SimTime monthStart = 0;        ///< Window start time.
};

/**
 * Generates community logs from a sampled population.
 */
class LogGenerator
{
  public:
    /**
     * @param universe Popularity model; must outlive the generator.
     * @param pop Population knobs.
     * @param cfg Log shape.
     */
    LogGenerator(const QueryUniverse &universe,
                 const PopulationConfig &pop, const LogGenConfig &cfg);

    /**
     * Generate one month of community traffic. Users persist inside the
     * generator, so consecutive calls produce consecutive months with
     * continuous personal histories (repeats carry over).
     */
    SearchLog generateMonth();

    /** The sampled community population. */
    const std::vector<UserProfile> &population() const { return profiles_; }

  private:
    const QueryUniverse &universe_;
    LogGenConfig cfg_;
    std::vector<UserProfile> profiles_;
    std::vector<UserStream> streams_;
    SimTime nextMonthStart_;
    u32 monthIndex_ = 0;
};

} // namespace pc::workload

#endif // PC_WORKLOAD_LOGGEN_H
