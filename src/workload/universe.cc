#include "workload/universe.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/strings.h"
#include "workload/vocab.h"

namespace pc::workload {

QueryUniverse::QueryUniverse(const UniverseConfig &cfg)
    : cfg_(cfg),
      navSkew_(solveZipfExponent(cfg.navResults, cfg.navHead,
                                 cfg.navHeadShare)),
      nonNavSkew_(solveZipfExponent(cfg.nonNavResults, cfg.nonNavHead,
                                    cfg.nonNavHeadShare)),
      navZipf_(cfg.navResults, navSkew_),
      nonNavZipf_(cfg.nonNavResults, nonNavSkew_),
      navZipfFp_(cfg.navResults, navSkew_ + cfg.featurephoneSkewBoost),
      nonNavZipfFp_(cfg.nonNavResults,
                    nonNavSkew_ + cfg.featurephoneSkewBoost)
{
    pc_assert(cfg_.navResults > 0 && cfg_.nonNavResults > 0,
              "universe needs both result pools");
    pc_assert(cfg_.navVolumeShare > 0.0 && cfg_.navVolumeShare < 1.0,
              "navVolumeShare must be in (0,1)");
    Rng rng(cfg_.seed);
    buildResults();
    buildQueriesAndAliases(rng);
}

void
QueryUniverse::buildResults()
{
    results_.reserve(u64(cfg_.navResults) + cfg_.nonNavResults);
    // Navigational pool first: ids [0, navResults). Popularity rank ==
    // id within the pool.
    for (u32 i = 0; i < cfg_.navResults; ++i) {
        ResultInfo r;
        const std::string domain = Vocabulary::domainToken(i);
        r.url = "www." + domain + ".com";
        r.title = domain;
        r.description = "Official site of " + domain + ".";
        r.navigational = true;
        r.poolRank = i;
        results_.push_back(std::move(r));
    }
    // Non-navigational pool: ids [navResults, navResults+nonNavResults).
    for (u32 i = 0; i < cfg_.nonNavResults; ++i) {
        ResultInfo r;
        const std::string site = Vocabulary::domainToken(
            u64(i) + 0x100000000ull);
        const std::string page = Vocabulary::word(u64(i) * 3 + 1);
        r.url = "www." + site + ".com/" + page;
        r.title = page + " - " + site;
        r.description = "Information about " + page + " on " + site + ".";
        r.navigational = false;
        r.poolRank = i;
        results_.push_back(std::move(r));
    }
}

void
QueryUniverse::buildQueriesAndAliases(Rng &rng)
{
    queries_.reserve(results_.size() * 3 / 2);

    auto addQuery = [&](std::string text, u32 result_id,
                        double weight) -> u32 {
        QueryInfo q;
        q.text = std::move(text);
        q.results.emplace_back(result_id, 1.0);
        queries_.push_back(std::move(q));
        const u32 qid = u32(queries_.size() - 1);
        results_[result_id].queries.emplace_back(qid, weight);
        return qid;
    };

    // Pass 1: canonical query + aliases for every result.
    for (u32 rid = 0; rid < results_.size(); ++rid) {
        ResultInfo &r = results_[rid];
        std::string canonical;
        if (r.navigational) {
            // Query string is a substring of the URL by construction:
            // exactly the paper's navigational-query definition.
            canonical = r.title;
        } else {
            canonical = Vocabulary::topicPhrase(rid * 7 + 3, 9'000);
            // Very rarely the phrase could coincide with part of the
            // URL; force non-navigational by appending a word.
            if (contains(r.url, canonical))
                canonical += " facts";
        }

        // Aliases: Poisson-ish count with the configured mean, heavier
        // for popular results (they attract more variant spellings).
        u32 aliases = 0;
        double expected = cfg_.meanAliases;
        // First ~5% of each pool gets twice the alias rate.
        const u32 pool_rank = r.navigational ? rid : rid - cfg_.navResults;
        const u32 pool_size =
            r.navigational ? cfg_.navResults : cfg_.nonNavResults;
        if (pool_rank < pool_size / 20)
            expected *= 2.7;
        while (expected > 0.0) {
            if (rng.chance(std::min(expected, 1.0)))
                ++aliases;
            expected -= 1.0;
        }

        const double alias_total = 1.0 - cfg_.canonicalWeight;
        const double canonical_w =
            aliases == 0 ? 1.0 : cfg_.canonicalWeight;
        addQuery(canonical, rid, canonical_w);
        std::vector<std::string> used = {canonical};
        for (u32 a = 0; a < aliases; ++a) {
            const AliasKind kind = rng.chance(0.6)
                ? AliasKind::Misspelling : AliasKind::Shortcut;
            // Salts can collide on short words (few corruption sites);
            // retry until the alias is distinct from earlier ones.
            std::string alias;
            for (u64 salt = a + 1;; salt += 17) {
                alias = makeAlias(canonical, kind, salt);
                if (std::find(used.begin(), used.end(), alias) ==
                    used.end())
                    break;
                if (salt > a + 1 + 17 * 8) {
                    alias += char('a' + char(a % 26));
                    break;
                }
            }
            used.push_back(alias);
            addQuery(std::move(alias), rid, alias_total / aliases);
        }
    }

    // Pass 2: shared queries — non-nav canonical queries that also map
    // to a second non-nav result (Table 3's "michael jackson" clicking
    // through to both imdb and azlyrics). Head queries split clicks far
    // more often than tail ones, which is what makes two-result hash
    // entries pay off (Figure 11).
    for (u32 rid = cfg_.navResults; rid < results_.size(); ++rid) {
        const u32 pool_rank = rid - cfg_.navResults;
        const bool head = pool_rank < cfg_.nonNavResults / 20;
        const double prob =
            head ? cfg_.sharedHeadProb : cfg_.sharedQueryProb;
        if (!rng.chance(prob))
            continue;
        // The canonical query of result rid also clicks through to
        // another non-nav result of similar popularity ("michael
        // jackson" -> both imdb and azlyrics are popular). Head queries
        // pair with nearby head results so both pairs are cacheable.
        const auto &[qid, qw] = results_[rid].queries.front();
        (void)qw;
        const u32 span = head
            ? std::max<u32>(cfg_.nonNavResults / 100, 2)
            : std::max<u32>(cfg_.nonNavResults / 10, 2);
        u32 other = cfg_.navResults +
            u32((u64(pool_rank) + 1 + rng.below(span)) %
                cfg_.nonNavResults);
        if (other == rid)
            continue;
        // Secondary mapping carries a modest share of the other
        // result's volume and of the query's clicks.
        queries_[qid].results.emplace_back(other, 0.95);
        results_[other].queries.emplace_back(qid, 0.25);
        // Aliases of rid see the same corrected results page, so they
        // split clicks across the same two results.
        for (const auto &[aq, aw] : results_[rid].queries) {
            (void)aw;
            if (aq != qid && queries_[aq].results.size() == 1 &&
                queries_[aq].results.front().first == rid) {
                queries_[aq].results.emplace_back(other, 0.95);
                results_[other].queries.emplace_back(aq, 0.05);
            }
        }
    }

    // Pass 3: head navigational queries split their clicks between the
    // main site and a companion destination (the mobile variant):
    // "facebook" -> www.facebook.com and m.facebook.com. Companions are
    // appended outside the rank-sampled pools and only receive clicks
    // through query redistribution.
    const u32 nav_head = std::min(cfg_.navResults,
                                  u32(cfg_.navResults / 20));
    for (u32 rid = 0; rid < nav_head; ++rid) {
        if (!rng.chance(cfg_.navSharedHeadProb))
            continue;
        const auto &[qid, qw] = results_[rid].queries.front();
        (void)qw;
        ResultInfo companion;
        const std::string &domain = results_[rid].title;
        companion.url = "m." + domain + ".com";
        companion.title = domain + " mobile";
        companion.description = "Mobile site of " + domain + ".";
        companion.navigational = true; // query is a URL substring
        companion.poolRank = kNoPoolRank;
        companion.queries.emplace_back(qid, 1.0);
        results_.push_back(std::move(companion));
        const u32 cid = u32(results_.size() - 1);
        queries_[qid].results.emplace_back(cid, 0.95);
        // Aliases of the main site split across both destinations too.
        for (const auto &[aq, aw] : results_[rid].queries) {
            (void)aw;
            if (aq != qid && queries_[aq].results.size() == 1 &&
                queries_[aq].results.front().first == rid) {
                queries_[aq].results.emplace_back(cid, 0.95);
                results_[cid].queries.emplace_back(aq, 0.10);
            }
        }
    }
}

bool
QueryUniverse::isNavigationalPair(const PairRef &p) const
{
    return contains(results_.at(p.result).url, queries_.at(p.query).text);
}

u32
QueryUniverse::pickQueryOf(const ResultInfo &r, u32 result_id,
                           Rng &rng) const
{
    (void)result_id;
    pc_assert(!r.queries.empty(), "result with no queries");
    if (r.queries.size() == 1)
        return r.queries.front().first;
    double total = 0.0;
    for (const auto &[qid, w] : r.queries)
        total += w;
    double x = rng.uniform() * total;
    for (const auto &[qid, w] : r.queries) {
        x -= w;
        if (x <= 0.0)
            return qid;
    }
    return r.queries.back().first;
}

u32
QueryUniverse::pickResultOf(const QueryInfo &q, Rng &rng) const
{
    // A query's clicks split across the results on its page ("michael
    // jackson" -> imdb or azlyrics), by the query's result weights.
    if (q.results.size() == 1)
        return q.results.front().first;
    double total = 0.0;
    for (const auto &[rid, w] : q.results)
        total += w;
    double x = rng.uniform() * total;
    for (const auto &[rid, w] : q.results) {
        x -= w;
        if (x <= 0.0)
            return rid;
    }
    return q.results.back().first;
}

PairRef
QueryUniverse::samplePair(Rng &rng, DeviceType device, u32 epoch) const
{
    const bool nav = rng.chance(cfg_.navVolumeShare);
    u32 rid;
    if (device == DeviceType::Featurephone) {
        rid = nav ? navId(navZipfFp_.sample(rng))
                  : nonNavId(nonNavZipfFp_.sample(rng), epoch);
    } else {
        rid = nav ? navId(navZipf_.sample(rng))
                  : nonNavId(nonNavZipf_.sample(rng), epoch);
    }
    const u32 qid = pickQueryOf(results_[rid], rid, rng);
    return PairRef{qid, pickResultOf(queries_[qid], rng)};
}

PairRef
QueryUniverse::samplePairHabitual(Rng &rng, DeviceType device,
                                  double nav_share, u32 epoch) const
{
    // With probability mainstreamShare the habit is a mainstream
    // destination: the pool's Zipf conditioned on its mainstream head.
    // Otherwise it is a personal oddity from the full distribution.
    if (!rng.chance(cfg_.mainstreamShare))
        return samplePair(rng, device, epoch);

    if (nav_share < 0.0)
        nav_share = cfg_.habitNavShare;
    const bool nav = rng.chance(nav_share);
    const ZipfSampler &z = (device == DeviceType::Featurephone)
        ? (nav ? navZipfFp_ : nonNavZipfFp_)
        : (nav ? navZipf_ : nonNavZipf_);
    const u64 head = std::min<u64>(
        nav ? cfg_.habitNavHead : cfg_.habitNonNavHead, z.size());
    // Rejection-sample the conditional head distribution; the head
    // carries a large share of the mass, so this terminates quickly.
    u64 rank = z.sample(rng);
    for (int t = 0; t < 64 && rank >= head; ++t)
        rank = z.sample(rng);
    if (rank >= head)
        rank = rank % head;
    const u32 rid = nav ? navId(rank) : nonNavId(rank, epoch);
    // Routine queries are well-practiced: usually the canonical string.
    u32 qid;
    if (rng.chance(cfg_.habitCanonicalBias))
        qid = results_[rid].queries.front().first;
    else
        qid = pickQueryOf(results_[rid], rid, rng);
    return PairRef{qid, pickResultOf(queries_[qid], rng)};
}

double
QueryUniverse::pairProbability(const PairRef &p) const
{
    // P(pair) = P(pick query) * P(final result | query): the clicked
    // result is redistributed among the query's results, so the final
    // factor is independent of which result was popularity-sampled.
    const QueryInfo &q = queries_.at(p.query);

    auto resultProb = [&](u32 rid) {
        const ResultInfo &r = results_.at(rid);
        if (r.poolRank == kNoPoolRank)
            return 0.0; // companions are never rank-sampled
        const bool nav = r.navigational;
        const double pool_share =
            nav ? cfg_.navVolumeShare : 1.0 - cfg_.navVolumeShare;
        return pool_share * (nav ? navZipf_.pmf(r.poolRank)
                                 : nonNavZipf_.pmf(r.poolRank));
    };

    // P(pick query q) over all results q is attached to.
    double p_query = 0.0;
    for (const auto &[rid, w] : q.results) {
        (void)w;
        const ResultInfo &r = results_.at(rid);
        double total = 0.0, mine = 0.0;
        for (const auto &[qid, qw] : r.queries) {
            total += qw;
            if (qid == p.query)
                mine += qw;
        }
        if (total > 0.0)
            p_query += resultProb(rid) * (mine / total);
    }

    // P(final result | query).
    double total_w = 0.0, final_w = 0.0;
    for (const auto &[rid, w] : q.results) {
        total_w += w;
        if (rid == p.result)
            final_w += w;
    }
    if (total_w <= 0.0)
        return 0.0;
    return p_query * (final_w / total_w);
}

Bytes
QueryUniverse::recordSize(const ResultInfo &r)
{
    // Record layout in the on-phone DB: title, description, URL, plus a
    // little framing — the paper quotes ~500 bytes on average. Synthetic
    // strings are shorter than real snippets, so pad to a realistic
    // minimum.
    const Bytes raw = r.title.size() + r.description.size() +
                      r.url.size() + 16;
    return std::max<Bytes>(raw, 480);
}

} // namespace pc::workload
