#include "store/page_cache.h"

#include "util/logging.h"

namespace pc::store {

PageCache::PageCache(const PageCacheConfig &cfg) : cfg_(cfg)
{
    pc_assert(cfg_.pageSize > 0, "page size must be positive");
}

const std::string *
PageCache::lookup(u32 file, u64 page)
{
    auto it = byKey_.find(keyOf(file, page));
    if (it == byKey_.end()) {
        ++stats_.misses;
        return nullptr;
    }
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second); // refresh recency
    return &it->second->bytes;
}

bool
PageCache::contains(u32 file, u64 page) const
{
    return byKey_.find(keyOf(file, page)) != byKey_.end();
}

void
PageCache::insert(u32 file, u64 page, std::string bytes)
{
    if (cfg_.capacityPages == 0)
        return;
    const u64 key = keyOf(file, page);
    auto it = byKey_.find(key);
    if (it != byKey_.end()) {
        it->second->bytes = std::move(bytes);
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    if (byKey_.size() >= cfg_.capacityPages) {
        byKey_.erase(lru_.back().key);
        lru_.pop_back();
        ++stats_.evictions;
    }
    lru_.push_front(Entry{key, std::move(bytes)});
    byKey_[key] = lru_.begin();
    ++stats_.insertions;
}

void
PageCache::invalidate(u32 file, u64 page)
{
    auto it = byKey_.find(keyOf(file, page));
    if (it == byKey_.end())
        return;
    lru_.erase(it->second);
    byKey_.erase(it);
    ++stats_.invalidations;
}

void
PageCache::invalidateFile(u32 file)
{
    for (auto it = lru_.begin(); it != lru_.end();) {
        if ((it->key >> 32) == file) {
            byKey_.erase(it->key);
            it = lru_.erase(it);
            ++stats_.invalidations;
        } else {
            ++it;
        }
    }
}

} // namespace pc::store
