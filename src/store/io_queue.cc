#include "store/io_queue.h"

namespace pc::store {

WriteBatch::WriteBatch(pc::simfs::FlashStore &store, u32 window)
    : store_(store), window_(window)
{
}

void
WriteBatch::enqueue(pc::simfs::FileId file, Bytes offset, std::string bytes,
                    SimTime &time)
{
    if (bytes.empty())
        return;
    ++stats_.ops;
    pending_.push_back(Op{file, offset, std::move(bytes)});
    if (window_ == 0 || pending_.size() >= window_)
        flush(time);
}

void
WriteBatch::flush(SimTime &time)
{
    if (pending_.empty())
        return;
    ++stats_.flushes;
    // Walk ops in enqueue order, folding each into the current run when
    // it extends it contiguously; anything else starts a new run. Never
    // reorder — see the file comment for why.
    std::size_t i = 0;
    while (i < pending_.size()) {
        const pc::simfs::FileId file = pending_[i].file;
        const Bytes start = pending_[i].offset;
        std::string run = std::move(pending_[i].bytes);
        ++i;
        while (i < pending_.size() && pending_[i].file == file &&
               pending_[i].offset == start + run.size()) {
            run += pending_[i].bytes;
            ++i;
        }
        ++stats_.runs;
        if (onFlush_)
            onFlush_(file, start, run.size());
        store_.writeAt(file, start, run, time);
    }
    pending_.clear();
}

} // namespace pc::store
