/**
 * @file
 * Pluggable in-memory index backends for the pc::store engine.
 *
 * KVell's central design point is that the persistent structure stays
 * dumb (slab files of fixed-size slots) while all ordering/lookup
 * intelligence lives in a rebuildable in-memory index — the engine
 * recovers the index by scanning slabs at attach time. The `Index`
 * interface captures exactly what the engine needs (upsert / find /
 * erase by 64-bit key) so backends are interchangeable: a hash table
 * for O(1) point lookups and an ordered tree for sorted iteration,
 * selectable per StoreEngineConfig. Each backend also models its probe
 * cost in simulated time, so the backend choice is visible in the
 * YCSB-style sweep, not just in host wall-clock.
 */

#ifndef PC_STORE_INDEX_H
#define PC_STORE_INDEX_H

#include <functional>
#include <memory>
#include <string>

#include "util/types.h"

namespace pc::store {

/** Where an item lives: slab id, slot within it, payload length. */
struct ItemLoc
{
    u32 slab = 0;  ///< Engine-wide slab id.
    u32 slot = 0;  ///< Slot index within the slab.
    u32 len = 0;   ///< Payload length in bytes (header excluded).
};

/** Index implementation selector. */
enum class IndexBackend
{
    Hash,    ///< Open hash table: O(1) probes, unordered.
    Ordered, ///< Balanced tree: O(log n) probes, sorted iteration.
};

/** Display name of a backend ("hash" / "ordered"). */
const char *indexBackendName(IndexBackend b);

/**
 * The in-memory key → location map. Implementations are rebuilt from
 * slab scans at attach time; nothing here is persistent.
 */
class Index
{
  public:
    virtual ~Index() = default;

    /** Insert or overwrite the location of `key`. */
    virtual void upsert(u64 key, const ItemLoc &loc) = 0;

    /** Remove `key`. @return True if it was present. */
    virtual bool erase(u64 key) = 0;

    /** Location of `key`, or nullptr. Pointer valid until mutation. */
    virtual const ItemLoc *find(u64 key) const = 0;

    /** Number of indexed keys. */
    virtual std::size_t size() const = 0;

    /** Approximate DRAM footprint of the index structure. */
    virtual Bytes memoryBytes() const = 0;

    /**
     * Visit every (key, loc) pair. Ordered backends visit in ascending
     * key order; hash backends in unspecified (but per-run stable)
     * order — callers that need determinism across runs must sort.
     */
    virtual void
    forEach(const std::function<void(u64, const ItemLoc &)> &fn) const = 0;

    /**
     * Modelled cost of one probe at the current size (charged to the
     * simulated clock by the engine, not measured on the host).
     */
    virtual SimTime probeCost(std::size_t items) const = 0;

    /** Backend selector this index implements. */
    virtual IndexBackend backend() const = 0;
};

/** Construct an index of the requested backend. */
std::unique_ptr<Index> makeIndex(IndexBackend b);

} // namespace pc::store

#endif // PC_STORE_INDEX_H
