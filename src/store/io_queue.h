/**
 * @file
 * Batched write queue for slab files.
 *
 * KVell's slab workers never issue one syscall per operation — they
 * enqueue, coalesce, and submit batches, amortizing the fixed
 * per-request cost. The analogue here: slot writes are enqueued and,
 * at flush, contiguous runs are merged into single FlashStore programs
 * — two 32-byte header writes landing in the same flash page cost one
 * page program instead of two.
 *
 * Ordering is load-bearing for crash safety and is therefore
 * preserved exactly: ops are issued in enqueue order, and an op is
 * merged only into the run immediately preceding it (same file,
 * contiguous forward offset). Under an armed power-loss crash the
 * program budget then runs out in enqueue order — an update's new
 * version always reaches the flash before the kill of its
 * predecessor, which is the invariant recovery relies on.
 */

#ifndef PC_STORE_IO_QUEUE_H
#define PC_STORE_IO_QUEUE_H

#include <functional>
#include <string>
#include <vector>

#include "simfs/flash_store.h"
#include "util/types.h"

namespace pc::store {

/** Cumulative batching statistics. */
struct BatchStats
{
    u64 ops = 0;     ///< Writes enqueued.
    u64 flushes = 0; ///< Flush calls that issued work.
    u64 runs = 0;    ///< Coalesced programs actually issued.

    /** Mean ops folded into one program; 1.0 = no coalescing won. */
    double coalescing() const
    {
        return runs == 0 ? 0.0 : double(ops) / double(runs);
    }
};

/**
 * Order-preserving write coalescer in front of a FlashStore.
 */
class WriteBatch
{
  public:
    /**
     * @param store Destination store. Must outlive the batch.
     * @param window Auto-flush threshold: enqueue flushes once this
     *        many ops are pending. 0 disables batching (every enqueue
     *        issues immediately).
     */
    WriteBatch(pc::simfs::FlashStore &store, u32 window);

    /**
     * Queue a write of `bytes` at `offset` of `file`; flushes
     * automatically when the window fills, charging `time`.
     */
    void enqueue(pc::simfs::FileId file, Bytes offset, std::string bytes,
                 SimTime &time);

    /** Issue all pending ops as coalesced runs, in enqueue order. */
    void flush(SimTime &time);

    /** True when nothing is pending. */
    bool empty() const { return pending_.empty(); }

    /** Pending op count. */
    std::size_t pending() const { return pending_.size(); }

    /**
     * Observer called once per issued run (file, offset, length),
     * before the store write — the engine invalidates page-cache
     * entries covered by the run here.
     */
    void onFlush(std::function<void(pc::simfs::FileId, Bytes, Bytes)> fn)
    {
        onFlush_ = std::move(fn);
    }

    /** Statistics. */
    const BatchStats &stats() const { return stats_; }

  private:
    struct Op
    {
        pc::simfs::FileId file;
        Bytes offset;
        std::string bytes;
    };

    pc::simfs::FlashStore &store_;
    u32 window_;
    std::vector<Op> pending_;
    std::function<void(pc::simfs::FileId, Bytes, Bytes)> onFlush_;
    BatchStats stats_;
};

} // namespace pc::store

#endif // PC_STORE_IO_QUEUE_H
