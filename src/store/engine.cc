#include "store/engine.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <tuple>

#include "util/crc32.h"
#include "util/logging.h"
#include "util/strings.h"

namespace pc::store {

namespace {

void
putU32(std::string &s, u32 v)
{
    for (int i = 0; i < 4; ++i)
        s.push_back(char((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &s, u64 v)
{
    for (int i = 0; i < 8; ++i)
        s.push_back(char((v >> (8 * i)) & 0xff));
}

u32
getU32(std::string_view s, std::size_t at)
{
    u32 v = 0;
    for (int i = 0; i < 4; ++i)
        v |= u32(u8(s[at + i])) << (8 * i);
    return v;
}

u64
getU64(std::string_view s, std::size_t at)
{
    u64 v = 0;
    for (int i = 0; i < 8; ++i)
        v |= u64(u8(s[at + i])) << (8 * i);
    return v;
}

/** CRC over (len, key, seq, payload) — everything but magic and pad. */
u32
slotCrc(u32 len, u64 key, u64 seq, std::string_view payload)
{
    std::string fields;
    fields.reserve(20);
    putU32(fields, len);
    putU64(fields, key);
    putU64(fields, seq);
    return crc32(payload, crc32(fields));
}

} // namespace

StoreEngine::StoreEngine(pc::simfs::FlashStore &store,
                         const StoreEngineConfig &cfg, std::string prefix)
    : store_(store), cfg_(cfg), prefix_(std::move(prefix)),
      index_(makeIndex(cfg_.backend)), cache_(cfg_.cache),
      batch_(store, cfg_.batchWindow)
{
    pc_assert(!cfg_.sizeClasses.empty(), "need at least one size class");
    for (std::size_t i = 0; i < cfg_.sizeClasses.size(); ++i) {
        pc_assert(cfg_.sizeClasses[i] > kHeaderSize,
                  "size class must exceed the slot header");
        pc_assert(i == 0 || cfg_.sizeClasses[i] > cfg_.sizeClasses[i - 1],
                  "size classes must ascend");
    }
    pc_assert(cfg_.slotsPerSlab >= 2, "slabs need at least two slots");
    pc_assert(cfg_.gcDeadFraction > 0.0 && cfg_.gcDeadFraction <= 1.0,
              "gcDeadFraction must be in (0, 1]");
    classSlabs_.resize(cfg_.sizeClasses.size());
    nextNameSeq_.assign(cfg_.sizeClasses.size(), 0);
    batch_.onFlush([this](pc::simfs::FileId f, Bytes off, Bytes len) {
        invalidateRange(f, off, len);
    });
    recover();
}

u32
StoreEngine::classFor(Bytes len) const
{
    for (u32 c = 0; c < cfg_.sizeClasses.size(); ++c) {
        if (payloadCap(c) >= len)
            return c;
    }
    return u32(cfg_.sizeClasses.size());
}

std::string
StoreEngine::slabFileName(u32 classIdx, u32 nameSeq) const
{
    return strformat("%s.c%llu.s%06u", prefix_.c_str(),
                     (unsigned long long)slotSize(classIdx), nameSeq);
}

std::string
StoreEngine::encodeSlot(u64 key, u64 seq, std::string_view payload)
{
    std::string s;
    s.reserve(kHeaderSize + payload.size());
    putU32(s, kMagic);
    putU32(s, u32(payload.size()));
    putU64(s, key);
    putU64(s, seq);
    putU32(s, slotCrc(u32(payload.size()), key, seq, payload));
    putU32(s, 0); // pad
    s.append(payload);
    return s;
}

StoreEngine::SlotHeader
StoreEngine::parseSlot(std::string_view bytes)
{
    SlotHeader h;
    if (bytes.size() < kHeaderSize) {
        h.blank = bytes.find_first_not_of('\0') == std::string_view::npos;
        return h;
    }
    const u32 magic = getU32(bytes, 0);
    h.len = getU32(bytes, 4);
    h.key = getU64(bytes, 8);
    h.seq = getU64(bytes, 16);
    h.crc = getU32(bytes, 24);
    h.blank = magic == 0 && h.len == 0 && h.key == 0 && h.seq == 0 &&
              h.crc == 0;
    if (magic != kMagic || bytes.size() < kHeaderSize + h.len)
        return h;
    h.valid = slotCrc(h.len, h.key, h.seq,
                      bytes.substr(kHeaderSize, h.len)) == h.crc;
    return h;
}

u32
StoreEngine::newSlab(u32 classIdx)
{
    const u32 nameSeq = nextNameSeq_[classIdx]++;
    const std::string name = slabFileName(classIdx, nameSeq);
    const pc::simfs::FileId f = store_.create(name);
    pc_assert(f != pc::simfs::kNoFile, "slab file name collision: ", name);
    Slab s;
    s.file = f;
    s.classIdx = classIdx;
    s.nameSeq = nameSeq;
    s.slots.assign(cfg_.slotsPerSlab, SlotState::Free);
    slabs_.push_back(std::move(s));
    const u32 id = u32(slabs_.size() - 1);
    classSlabs_[classIdx].push_back(id);
    return id;
}

u32
StoreEngine::fillSlab(u32 classIdx)
{
    auto &list = classSlabs_[classIdx];
    if (!list.empty()) {
        const Slab &s = slabs_[list.back()];
        if (s.live < s.slots.size())
            return list.back();
    }
    return newSlab(classIdx);
}

u32
StoreEngine::takeSlot(Slab &s)
{
    u32 pick = u32(s.slots.size());
    for (u32 i = 0; i < s.slots.size(); ++i) {
        if (s.slots[i] == SlotState::Free) {
            pick = i;
            break;
        }
        if (pick == s.slots.size() && s.slots[i] == SlotState::Dead)
            pick = i;
    }
    pc_assert(pick < s.slots.size(), "takeSlot on a full slab");
    if (s.slots[pick] == SlotState::Dead) {
        pc_assert(s.dead > 0, "slot state desync");
        --s.dead;
    }
    s.slots[pick] = SlotState::Live;
    ++s.live;
    return pick;
}

u32
StoreEngine::pickDestination(u32 classIdx, u32 exclude)
{
    u32 best = u32(slabs_.size());
    double bestWear = 0.0;
    for (u32 id : classSlabs_[classIdx]) {
        if (id == exclude)
            continue;
        const Slab &s = slabs_[id];
        if (s.defunct || s.live >= s.slots.size())
            continue;
        const double wear = store_.avgWear(s.file);
        if (best == slabs_.size() || wear < bestWear) {
            best = id;
            bestWear = wear;
        }
    }
    if (best != slabs_.size())
        return best;
    // No room anywhere: a fresh slab, whose blocks come from the
    // store's allocator (least-worn-first when wear leveling is on).
    return newSlab(classIdx);
}

void
StoreEngine::killSlot(const ItemLoc &loc, SimTime &time)
{
    Slab &s = slabs_[loc.slab];
    pc_assert(s.slots[loc.slot] == SlotState::Live, "killing non-live slot");
    // Zero the header magic in place. NAND-legal (programming only
    // clears bits) and crash-safe: a torn kill leaves the magic
    // partially cleared, which recovery reads as dead either way — and
    // the kill is only queued after its replacement's program, so the
    // budget cannot kill the old version before the new one landed.
    batch_.enqueue(s.file, slotOffset(s, loc.slot),
                   std::string(4, '\0'), time);
    s.slots[loc.slot] = SlotState::Dead;
    pc_assert(s.live > 0, "slot state desync");
    --s.live;
    ++s.dead;
}

bool
StoreEngine::put(u64 key, std::string_view value, SimTime &time)
{
    const u32 c = classFor(value.size());
    if (c >= cfg_.sizeClasses.size())
        return false; // larger than the largest size class
    if (powerLost())
        return false;
    ItemLoc oldLoc;
    bool hadOld = false;
    if (const ItemLoc *old = index_->find(key)) {
        oldLoc = *old;
        hadOld = true;
    }
    const u64 seq = ++lastSeq_;
    const u32 slabId = fillSlab(c);
    Slab &s = slabs_[slabId];
    const u32 slot = takeSlot(s);
    batch_.enqueue(s.file, slotOffset(s, slot),
                   encodeSlot(key, seq, value), time);
    index_->upsert(key, ItemLoc{slabId, slot, u32(value.size())});
    liveBytes_ += value.size();
    if (hadOld) {
        liveBytes_ -= oldLoc.len;
        killSlot(oldLoc, time);
        ++stats_.updates;
        maybeGc(oldLoc.slab, time);
    } else {
        ++stats_.puts;
    }
    return true;
}

bool
StoreEngine::remove(u64 key, SimTime &time)
{
    if (powerLost())
        return false;
    const ItemLoc *loc = index_->find(key);
    if (!loc)
        return false;
    const ItemLoc dead = *loc;
    index_->erase(key);
    liveBytes_ -= dead.len;
    killSlot(dead, time);
    ++stats_.removes;
    maybeGc(dead.slab, time);
    return true;
}

void
StoreEngine::flush(SimTime &time)
{
    batch_.flush(time);
}

void
StoreEngine::invalidateRange(pc::simfs::FileId file, Bytes offset,
                             Bytes len)
{
    if (len == 0)
        return;
    const Bytes ps = cache_.config().pageSize;
    const u64 p0 = offset / ps;
    const u64 p1 = (offset + len - 1) / ps;
    for (u64 p = p0; p <= p1; ++p)
        cache_.invalidate(u32(file), p);
}

void
StoreEngine::readCached(const Slab &s, Bytes offset, Bytes len,
                        std::string &out, SimTime &time)
{
    const Bytes ps = cache_.config().pageSize;
    if (cache_.config().capacityPages == 0) {
        time += cfg_.missOverhead;
        store_.read(s.file, offset, len, out, time);
        return;
    }
    const u64 p0 = offset / ps;
    const u64 p1 = (offset + len - 1) / ps;
    bool allHit = true;
    for (u64 p = p0; p <= p1; ++p) {
        if (!cache_.contains(u32(s.file), p)) {
            allHit = false;
            break;
        }
    }
    // A fully cached read is a DRAM copy; any missing page pays the
    // block-layer submission once plus the device reads below.
    time += allHit ? cfg_.hitOverhead : cfg_.missOverhead;
    out.clear();
    out.reserve(len);
    for (u64 p = p0; p <= p1; ++p) {
        const std::string *page = cache_.lookup(u32(s.file), p);
        std::string fetched;
        if (!page) {
            store_.read(s.file, p * ps, ps, fetched, time);
            cache_.insert(u32(s.file), p, fetched);
            page = &fetched;
        }
        const Bytes pageStart = p * ps;
        const Bytes from = std::max(offset, pageStart);
        const Bytes to = std::min(offset + len, pageStart + ps);
        // The page may be short when the slab file ends inside it
        // (e.g. a torn program dropped the slot's bytes); the caller's
        // checksum verification catches the truncation.
        if (from - pageStart < page->size()) {
            const Bytes upto = std::min(to - pageStart, Bytes(page->size()));
            out.append(*page, from - pageStart, upto - (from - pageStart));
        }
    }
}

bool
StoreEngine::readSlotVerified(const Slab &s, u32 slot, Bytes len,
                              bool useCache, std::string &slotBytes,
                              SimTime &time)
{
    const Bytes off = slotOffset(s, slot);
    const Bytes need = kHeaderSize + len;
    for (u32 attempt = 0; attempt < kMaxReadRetries; ++attempt) {
        std::string bytes;
        if (useCache && attempt == 0) {
            readCached(s, off, need, bytes, time);
        } else {
            // Retry (or GC/recovery) path: a checksum failure may have
            // poisoned the cache with a flipped page — drop those
            // pages and go to the device.
            if (useCache)
                invalidateRange(s.file, off, need);
            time += cfg_.missOverhead;
            store_.read(s.file, off, need, bytes, time);
        }
        const SlotHeader h = parseSlot(bytes);
        if (h.valid && h.len == len) {
            slotBytes = std::move(bytes);
            return true;
        }
        ++stats_.crcRetries;
    }
    return false;
}

bool
StoreEngine::get(u64 key, std::string &out, SimTime &time)
{
    flush(time); // read-your-writes
    ++stats_.gets;
    time += index_->probeCost(index_->size());
    const ItemLoc *loc = index_->find(key);
    if (!loc)
        return false;
    const ItemLoc l = *loc;
    std::string slotBytes;
    if (!readSlotVerified(slabs_[l.slab], l.slot, l.len, true, slotBytes,
                          time)) {
        ++stats_.readFailures;
        return false;
    }
    out.assign(slotBytes, kHeaderSize, l.len);
    ++stats_.getHits;
    return true;
}

bool
StoreEngine::contains(u64 key) const
{
    return index_->find(key) != nullptr;
}

bool
StoreEngine::collectSlab(u32 slabId, SimTime &time)
{
    flush(time);
    if (powerLost()) {
        ++gcStats_.aborted;
        return false;
    }
    struct Move
    {
        u64 key;
        u32 destSlab;
        u32 destSlot;
        u32 len;
    };
    std::vector<Move> moves;
    const u32 classIdx = slabs_[slabId].classIdx;
    const u32 slotCount = u32(slabs_[slabId].slots.size());
    for (u32 slot = 0; slot < slotCount; ++slot) {
        if (slabs_[slabId].slots[slot] != SlotState::Live)
            continue;
        // The index knows only key → loc; GC walks slots, so the key
        // comes from the verified on-flash header.
        std::string region;
        SlotHeader h;
        bool ok = false;
        for (u32 attempt = 0; attempt < kMaxReadRetries; ++attempt) {
            store_.read(slabs_[slabId].file,
                        slotOffset(slabs_[slabId], slot),
                        slotSize(classIdx), region, time);
            h = parseSlot(region);
            if (h.valid) {
                ok = true;
                break;
            }
            ++stats_.crcRetries;
        }
        pc_assert(ok, "GC could not verify a live slot");
        const u32 dest = pickDestination(classIdx, slabId);
        const u32 dslot = takeSlot(slabs_[dest]);
        // Verbatim copy, same seq: if the crash interrupts GC, recovery
        // keeps whichever copy survived (identical bytes either way).
        batch_.enqueue(slabs_[dest].file,
                       slotOffset(slabs_[dest], dslot),
                       region.substr(0, kHeaderSize + h.len), time);
        moves.push_back(Move{h.key, dest, dslot, h.len});
    }
    flush(time);
    if (powerLost()) {
        // The copies never (fully) landed; leave the index on the
        // source slab and hand the destination slots back.
        for (const Move &m : moves) {
            Slab &d = slabs_[m.destSlab];
            d.slots[m.destSlot] = SlotState::Free;
            --d.live;
        }
        ++gcStats_.aborted;
        return false;
    }
    for (const Move &m : moves) {
        index_->upsert(m.key, ItemLoc{m.destSlab, m.destSlot, m.len});
        gcStats_.bytesMoved += m.len;
    }
    Slab &src = slabs_[slabId];
    cache_.invalidateFile(u32(src.file));
    store_.remove(src.file, time); // timed: erase-on-reclaim is charged
    src.defunct = true;
    src.slots.assign(src.slots.size(), SlotState::Free);
    src.live = 0;
    src.dead = 0;
    auto &list = classSlabs_[classIdx];
    list.erase(std::remove(list.begin(), list.end(), slabId), list.end());
    ++gcStats_.collections;
    gcStats_.relocated += moves.size();
    ++gcStats_.slabsReclaimed;
    return true;
}

void
StoreEngine::maybeGc(u32 slabId, SimTime &time)
{
    if (!cfg_.gcAuto)
        return;
    const Slab &s = slabs_[slabId];
    if (s.defunct)
        return;
    // The fill slab recycles its dead slots on the write path; GC only
    // chases slabs the allocator has moved past.
    const auto &list = classSlabs_[s.classIdx];
    if (!list.empty() && list.back() == slabId)
        return;
    if (double(s.dead) < cfg_.gcDeadFraction * double(s.slots.size()))
        return;
    collectSlab(slabId, time);
}

u32
StoreEngine::gcSweep(SimTime &time)
{
    u32 reclaimed = 0;
    const std::size_t count = slabs_.size(); // new slabs appended are clean
    for (u32 id = 0; id < count; ++id) {
        const Slab &s = slabs_[id];
        if (s.defunct)
            continue;
        if (double(s.dead) < cfg_.gcDeadFraction * double(s.slots.size()))
            continue;
        if (collectSlab(id, time))
            ++reclaimed;
    }
    return reclaimed;
}

Bytes
StoreEngine::physicalBytes() const
{
    Bytes total = 0;
    for (const Slab &s : slabs_) {
        if (!s.defunct)
            total += store_.physicalSize(s.file);
    }
    return total;
}

std::vector<std::string>
StoreEngine::fileNames() const
{
    std::vector<std::string> names;
    for (const Slab &s : slabs_) {
        if (!s.defunct)
            names.push_back(slabFileName(s.classIdx, s.nameSeq));
    }
    std::sort(names.begin(), names.end());
    return names;
}

void
StoreEngine::recover()
{
    struct Found
    {
        u32 classIdx;
        u32 nameSeq;
        std::string name;
    };
    std::vector<Found> found;
    const std::string stem = prefix_ + ".c";
    for (const std::string &name : store_.listFiles()) {
        if (!startsWith(name, stem))
            continue;
        unsigned long long classSize = 0;
        unsigned nameSeq = 0;
        char trailing = 0;
        const int got =
            std::sscanf(name.c_str() + prefix_.size(), ".c%llu.s%u%c",
                        &classSize, &nameSeq, &trailing);
        if (got != 2)
            continue; // another tenant's file that shares the stem
        u32 classIdx = u32(cfg_.sizeClasses.size());
        for (u32 c = 0; c < cfg_.sizeClasses.size(); ++c) {
            if (cfg_.sizeClasses[c] == classSize) {
                classIdx = c;
                break;
            }
        }
        pc_assert(classIdx < cfg_.sizeClasses.size(),
                  "slab file of unknown size class: ", name);
        found.push_back(Found{classIdx, u32(nameSeq), name});
    }
    std::sort(found.begin(), found.end(),
              [](const Found &a, const Found &b) {
                  return std::tie(a.classIdx, a.nameSeq) <
                         std::tie(b.classIdx, b.nameSeq);
              });

    struct Candidate
    {
        u64 seq;
        u32 slabId;
        u32 slot;
        u32 len;
    };
    std::map<u64, Candidate> best; // key-ordered: deterministic rebuild
    std::vector<std::pair<u32, u32>> candidateSlots;
    for (const Found &f : found) {
        const pc::simfs::FileId file = store_.lookup(f.name);
        pc_assert(file != pc::simfs::kNoFile, "slab vanished mid-attach");
        Slab s;
        s.file = file;
        s.classIdx = f.classIdx;
        s.nameSeq = f.nameSeq;
        s.slots.assign(cfg_.slotsPerSlab, SlotState::Free);
        slabs_.push_back(std::move(s));
        const u32 slabId = u32(slabs_.size() - 1);
        classSlabs_[f.classIdx].push_back(slabId);
        nextNameSeq_[f.classIdx] =
            std::max(nextNameSeq_[f.classIdx], f.nameSeq + 1);

        std::string buf;
        store_.read(file, 0, store_.size(file), buf, recoveryTime_);
        Slab &slab = slabs_[slabId];
        const Bytes ssize = slotSize(f.classIdx);
        for (u32 slot = 0; slot < cfg_.slotsPerSlab; ++slot) {
            const Bytes off = Bytes(slot) * ssize;
            if (off >= buf.size())
                break; // rest of the slab was never programmed
            std::string_view region(buf.data() + off,
                                    std::min<Bytes>(ssize,
                                                    buf.size() - off));
            SlotHeader h = parseSlot(region);
            if (h.blank)
                continue; // Free
            const u32 magic =
                region.size() >= 4 ? getU32(region, 0) : 0;
            if (!h.valid && magic != 0) {
                // Non-blank and not a deliberate kill (kills zero the
                // magic): could be a wear flip in the scan buffer — the
                // stored bytes may be fine. Re-read before giving up.
                std::string fresh;
                for (u32 attempt = 0; attempt < kMaxReadRetries;
                     ++attempt) {
                    store_.read(file, off, ssize, fresh, recoveryTime_);
                    h = parseSlot(fresh);
                    if (h.valid)
                        break;
                    ++stats_.crcRetries;
                }
            }
            if (!h.valid || h.len > payloadCap(f.classIdx)) {
                // A deliberate kill, a torn program, or unrecoverable
                // rot: dead weight until GC.
                slab.slots[slot] = SlotState::Dead;
                ++slab.dead;
                continue;
            }
            lastSeq_ = std::max(lastSeq_, h.seq);
            slab.slots[slot] = SlotState::Dead; // demoted unless it wins
            ++slab.dead;
            candidateSlots.emplace_back(slabId, slot);
            auto it = best.find(h.key);
            if (it == best.end() || h.seq > it->second.seq)
                best[h.key] = Candidate{h.seq, slabId, slot, h.len};
        }
    }
    for (const auto &[key, c] : best) {
        Slab &s = slabs_[c.slabId];
        s.slots[c.slot] = SlotState::Live;
        --s.dead;
        ++s.live;
        index_->upsert(key, ItemLoc{c.slabId, c.slot, c.len});
        liveBytes_ += c.len;
    }
}

void
StoreEngine::publishMetrics(obs::MetricRegistry &reg) const
{
    reg.counter("store.puts").bump(stats_.puts);
    reg.counter("store.updates").bump(stats_.updates);
    reg.counter("store.removes").bump(stats_.removes);
    reg.counter("store.gets").bump(stats_.gets);
    reg.counter("store.get_hits").bump(stats_.getHits);
    reg.counter("store.crc_retries").bump(stats_.crcRetries);
    reg.counter("store.read_failures").bump(stats_.readFailures);
    const PageCacheStats &cs = cache_.stats();
    reg.counter("store.cache.hits").bump(cs.hits);
    reg.counter("store.cache.misses").bump(cs.misses);
    reg.counter("store.cache.insertions").bump(cs.insertions);
    reg.counter("store.cache.evictions").bump(cs.evictions);
    reg.counter("store.gc.collections").bump(gcStats_.collections);
    reg.counter("store.gc.relocated").bump(gcStats_.relocated);
    reg.counter("store.gc.slabs_reclaimed").bump(gcStats_.slabsReclaimed);
    const BatchStats &bs = batch_.stats();
    reg.counter("store.batch.ops").bump(bs.ops);
    reg.counter("store.batch.runs").bump(bs.runs);
    reg.counter("store.batch.flushes").bump(bs.flushes);
}

} // namespace pc::store
