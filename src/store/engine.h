/**
 * @file
 * pc::store — a KVell-style key-value engine over the flash model.
 *
 * The paper's PocketSearch keeps its result database as flat files
 * with a parse-the-whole-header lookup path (Section 5.2.2); this is
 * the next storage tier the ROADMAP names: fixed-size-class **slab
 * files** on simfs::FlashStore (inheriting all flash timing / energy /
 * wear accounting), a pluggable **in-memory index** (store/index.h)
 * rebuilt by scanning slabs at attach, an LRU **page cache**
 * (store/page_cache.h) so hot reads never touch the device, a
 * **batched write queue** (store/io_queue.h) coalescing slot programs,
 * and **wear-aware GC** that relocates live items out of fragmented
 * slabs into the least-worn destination and erases the source.
 *
 * On-flash slot format (little-endian, 32-byte header + payload):
 *
 *     [magic u32][len u32][key u64][seq u64][crc u32][zero u32] payload
 *
 * `seq` is a store-wide monotonic write sequence; `crc` covers
 * (len, key, seq, payload). Updates are written out-of-place to a
 * fresh slot first, then the predecessor's header magic is zeroed
 * in-place (NAND-legal: programming only clears bits). Removes zero
 * the magic the same way. Recovery scans every slab, keeps the
 * highest-seq valid copy per key, and treats everything else as free
 * — so a torn update leaves the previous acknowledged version intact,
 * a torn kill leaves two valid copies of which the newer wins, and
 * nothing ever resurrects. GC copies live slots verbatim (same seq):
 * a crash mid-GC recovers from whichever copy completed.
 *
 * Acknowledgement contract: a write is durable once flush() returns
 * with the attached FaultPlan (if any) not reporting powerLost(). The
 * crash property tests lean on exactly this.
 */

#ifndef PC_STORE_ENGINE_H
#define PC_STORE_ENGINE_H

#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "simfs/flash_store.h"
#include "store/index.h"
#include "store/io_queue.h"
#include "store/page_cache.h"
#include "util/types.h"

namespace pc::store {

/** Engine shape and modelled host costs. */
struct StoreEngineConfig
{
    /**
     * Slot sizes (header + payload capacity), ascending. An item goes
     * to the smallest class it fits; values larger than the biggest
     * class are rejected.
     */
    std::vector<Bytes> sizeClasses = {128, 256, 512, 1024, 2048, 4096};
    /** Slots per slab file. */
    u32 slotsPerSlab = 256;
    /** Index backend. */
    IndexBackend backend = IndexBackend::Hash;
    /** Page-cache geometry (capacityPages = 0 disables caching). */
    PageCacheConfig cache{};
    /** Write-queue auto-flush threshold (0 = unbatched). */
    u32 batchWindow = 8;
    /**
     * GC trigger: collect a non-fill slab once this fraction of its
     * slots are dead. 1.0 (or gcAuto = false) defers to gcSweep().
     */
    double gcDeadFraction = 0.5;
    /** Run GC opportunistically after kills. */
    bool gcAuto = true;
    /** Modelled cost of serving a read entirely from cached pages. */
    SimTime hitOverhead = 2 * kMicrosecond;
    /** Modelled block-layer submission cost of a read that misses. */
    SimTime missOverhead = 150 * kMicrosecond;
};

/** Garbage-collection counters. */
struct GcStats
{
    u64 collections = 0;    ///< Slabs collected.
    u64 relocated = 0;      ///< Live items moved out of collected slabs.
    u64 bytesMoved = 0;     ///< Payload bytes rewritten by relocation.
    u64 slabsReclaimed = 0; ///< Slab files erased and returned.
    u64 aborted = 0;        ///< Collections abandoned (power loss).
};

/** Operation counters. */
struct EngineStats
{
    u64 puts = 0;         ///< Fresh inserts.
    u64 updates = 0;      ///< Overwrites of an existing key.
    u64 removes = 0;      ///< Erases of a present key.
    u64 gets = 0;         ///< Point lookups.
    u64 getHits = 0;      ///< Lookups that found the key.
    u64 crcRetries = 0;   ///< Reads retried after checksum mismatch.
    u64 readFailures = 0; ///< Reads abandoned after exhausting retries.
};

/**
 * The slab engine. One instance owns a name-prefixed family of slab
 * files inside a FlashStore; attaching to a store that already holds
 * the prefix's slabs recovers the index from the on-flash slots.
 */
class StoreEngine
{
  public:
    /**
     * @param store Backing flash file store (shared with other tenants
     *        under different prefixes). Must outlive the engine.
     * @param cfg Engine configuration; must match the configuration
     *        the prefix's existing slabs were written with.
     * @param prefix Slab file name prefix.
     */
    StoreEngine(pc::simfs::FlashStore &store,
                const StoreEngineConfig &cfg = {},
                std::string prefix = "kv");

    /**
     * Insert or overwrite `key`. The write is queued (see flush());
     * the index reflects it immediately.
     * @param[out] time Accumulates program latency (including any
     *        auto-flush or GC work this op triggered).
     * @return False if the value exceeds the largest size class or the
     *         attached fault plan reports power lost.
     */
    bool put(u64 key, std::string_view value, SimTime &time);

    /**
     * Point lookup. Drains the write queue first (read-your-writes),
     * charges the index probe plus either the cache-hit overhead or
     * the miss overhead + device reads, verifies the checksum (retrying
     * reads that a wear-induced bit flip corrupted), and returns the
     * payload.
     */
    bool get(u64 key, std::string &out, SimTime &time);

    /** True if `key` is present (index only; no time charged). */
    bool contains(u64 key) const;

    /**
     * Remove `key` by zeroing its slot header in place.
     * @return False if the key is absent or power is lost.
     */
    bool remove(u64 key, SimTime &time);

    /** Drain the write queue. Durability point for queued writes. */
    void flush(SimTime &time);

    /**
     * Collect every eligible slab now (dead fraction at or above the
     * configured threshold, fill slabs included).
     * @return Slabs reclaimed.
     */
    u32 gcSweep(SimTime &time);

    /** Live item count. */
    u64 items() const { return index_->size(); }

    /** Sum of live payload bytes. */
    Bytes logicalBytes() const { return liveBytes_; }

    /** Block-rounded flash bytes occupied by all slab files. */
    Bytes physicalBytes() const;

    /** Names of all live slab files (sorted). */
    std::vector<std::string> fileNames() const;

    /** Simulated time spent scanning slabs at attach. */
    SimTime recoveryTime() const { return recoveryTime_; }

    /** Operation counters. */
    const EngineStats &stats() const { return stats_; }

    /** GC counters. */
    const GcStats &gcStats() const { return gcStats_; }

    /** Page-cache statistics. */
    const PageCacheStats &cacheStats() const { return cache_.stats(); }

    /** Write-batching statistics. */
    const BatchStats &batchStats() const { return batch_.stats(); }

    /** The index (inspection / iteration). */
    const Index &index() const { return *index_; }

    /** Configuration. */
    const StoreEngineConfig &config() const { return cfg_; }

    /** Backing store. */
    pc::simfs::FlashStore &store() { return store_; }

    /**
     * Fold the engine's counters into a registry: bumps "store.*"
     * (ops, cache, gc, batch) by current totals. Call once per
     * experiment phase, like FaultPlan::publishMetrics.
     */
    void publishMetrics(obs::MetricRegistry &reg) const;

    /** On-flash slot header size. */
    static constexpr Bytes kHeaderSize = 32;

  private:
    /** Slot lifecycle within a slab. */
    enum class SlotState : u8
    {
        Free, ///< Never written, or reclaimed by recovery.
        Live, ///< Holds the current version of some key.
        Dead, ///< Holds a killed/superseded version; GC fodder.
    };

    struct Slab
    {
        pc::simfs::FileId file = pc::simfs::kNoFile;
        u32 classIdx = 0;
        u32 nameSeq = 0; ///< Monotonic per-class file-name suffix.
        bool defunct = false;
        std::vector<SlotState> slots;
        u32 live = 0;
        u32 dead = 0;

        u32 freeSlots() const
        {
            return u32(slots.size()) - live - dead;
        }
    };

    /** Parsed slot header. */
    struct SlotHeader
    {
        u32 len = 0;
        u64 key = 0;
        u64 seq = 0;
        u32 crc = 0;
        bool valid = false; ///< Magic, length and checksum all check out.
        bool blank = false; ///< All-zero region (never-programmed slot).
    };

    Bytes slotSize(u32 classIdx) const { return cfg_.sizeClasses[classIdx]; }
    Bytes payloadCap(u32 classIdx) const
    {
        return slotSize(classIdx) - kHeaderSize;
    }
    Bytes slotOffset(const Slab &s, u32 slot) const
    {
        return Bytes(slot) * slotSize(s.classIdx);
    }

    /** Smallest class fitting `len` payload bytes, or class count. */
    u32 classFor(Bytes len) const;

    std::string slabFileName(u32 classIdx, u32 nameSeq) const;

    /** Encode a slot (header + payload). */
    static std::string encodeSlot(u64 key, u64 seq,
                                  std::string_view payload);
    /** Parse + verify a slot image (header + payload must be present). */
    static SlotHeader parseSlot(std::string_view bytes);

    /** Create a fresh slab for a class; returns its engine-wide id. */
    u32 newSlab(u32 classIdx);

    /** Slab to write into: the class's fill slab, growing as needed. */
    u32 fillSlab(u32 classIdx);

    /** Lowest reusable slot index of a slab. */
    u32 takeSlot(Slab &s);

    /**
     * GC destination: among the class's non-defunct slabs (excluding
     * `exclude`) with room, the one whose blocks are least worn; a
     * fresh slab otherwise.
     */
    u32 pickDestination(u32 classIdx, u32 exclude);

    /** Zero a slot's header magic (queued); bookkeeping to Dead. */
    void killSlot(const ItemLoc &loc, SimTime &time);

    /**
     * Read `kHeaderSize + len` bytes of a slot, verifying the
     * checksum; retries (bypassing and refreshing poisoned cache
     * pages) when a wear-induced bit flip corrupts the image. Returns
     * false after kMaxReadRetries failures.
     */
    bool readSlotVerified(const Slab &s, u32 slot, Bytes len,
                          bool useCache, std::string &slotBytes,
                          SimTime &time);

    /** Page-cache-fronted read of a slab-file byte range. */
    void readCached(const Slab &s, Bytes offset, Bytes len,
                    std::string &out, SimTime &time);

    /** Drop cached pages covering a flushed write range. */
    void invalidateRange(pc::simfs::FileId file, Bytes offset, Bytes len);

    /** Collect one slab: relocate live slots, erase the file. */
    bool collectSlab(u32 slabId, SimTime &time);

    /** Opportunistic GC check for one slab after a kill. */
    void maybeGc(u32 slabId, SimTime &time);

    /** Attach path: scan existing slab files, rebuild the index. */
    void recover();

    bool powerLost() const
    {
        return store_.faults() && store_.faults()->powerLost();
    }

    static constexpr u32 kMagic = 0x50435331; // "PCS1"
    static constexpr u32 kMaxReadRetries = 6;

    pc::simfs::FlashStore &store_;
    StoreEngineConfig cfg_;
    std::string prefix_;
    std::unique_ptr<Index> index_;
    PageCache cache_;
    WriteBatch batch_;
    std::vector<Slab> slabs_;
    /** Per class: slab ids in creation order (last = fill candidate). */
    std::vector<std::vector<u32>> classSlabs_;
    /** Per class: next file-name suffix. */
    std::vector<u32> nextNameSeq_;
    u64 lastSeq_ = 0;
    Bytes liveBytes_ = 0;
    SimTime recoveryTime_ = 0;
    EngineStats stats_;
    GcStats gcStats_;
};

} // namespace pc::store

#endif // PC_STORE_ENGINE_H
