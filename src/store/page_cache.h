/**
 * @file
 * LRU page cache for slab-file reads.
 *
 * KVell fronts its slab files with a page cache so hot items are
 * served from DRAM without touching the device; this is the analogue
 * for pc::store. Pages are keyed by (file id, page index); capacity is
 * a fixed page count with least-recently-used eviction. The cache is a
 * plain container — the engine decides what to cache, charges the
 * simulated hit/miss costs, and invalidates pages covered by writes.
 * Hit/miss/eviction counts are kept here so the engine can publish
 * them and the YCSB sweep can report hit rates per cache size.
 */

#ifndef PC_STORE_PAGE_CACHE_H
#define PC_STORE_PAGE_CACHE_H

#include <list>
#include <string>
#include <unordered_map>

#include "util/types.h"

namespace pc::store {

/** Cache geometry. */
struct PageCacheConfig
{
    /** Cached page size; aligns with the flash page for 1:1 charging. */
    Bytes pageSize = 4 * kKiB;
    /** Capacity in pages; 0 disables the cache (every lookup misses). */
    u32 capacityPages = 64;
};

/** Cumulative cache statistics. */
struct PageCacheStats
{
    u64 hits = 0;
    u64 misses = 0;
    u64 insertions = 0;
    u64 evictions = 0;
    u64 invalidations = 0;

    /** Hit fraction of all lookups; 0 when never probed. */
    double hitRate() const
    {
        const u64 total = hits + misses;
        return total == 0 ? 0.0 : double(hits) / double(total);
    }
};

/**
 * Fixed-capacity LRU map of file pages.
 */
class PageCache
{
  public:
    explicit PageCache(const PageCacheConfig &cfg = {});

    /**
     * Look a page up; a hit refreshes its recency and returns the
     * cached bytes (valid until the next mutation), a miss returns
     * nullptr. Both outcomes are counted.
     */
    const std::string *lookup(u32 file, u64 page);

    /**
     * Probe without counting or touching recency (the engine uses this
     * to decide hit/miss charging before assembling a read).
     */
    bool contains(u32 file, u64 page) const;

    /**
     * Insert (or replace) a page, evicting the least-recently-used
     * entry when full. No-op when the cache is disabled.
     */
    void insert(u32 file, u64 page, std::string bytes);

    /** Drop one page if cached (write invalidation). */
    void invalidate(u32 file, u64 page);

    /** Drop every cached page of a file (file deleted by GC). */
    void invalidateFile(u32 file);

    /** Pages currently cached. */
    std::size_t pagesCached() const { return byKey_.size(); }

    /** Statistics. */
    const PageCacheStats &stats() const { return stats_; }

    /** Geometry. */
    const PageCacheConfig &config() const { return cfg_; }

  private:
    struct Entry
    {
        u64 key;
        std::string bytes;
    };

    static u64 keyOf(u32 file, u64 page)
    {
        return (u64(file) << 32) | page;
    }

    PageCacheConfig cfg_;
    PageCacheStats stats_;
    std::list<Entry> lru_; ///< Front = most recently used.
    std::unordered_map<u64, std::list<Entry>::iterator> byKey_;
};

} // namespace pc::store

#endif // PC_STORE_PAGE_CACHE_H
