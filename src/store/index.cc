#include "store/index.h"

#include <cmath>
#include <map>
#include <unordered_map>

namespace pc::store {

const char *
indexBackendName(IndexBackend b)
{
    switch (b) {
    case IndexBackend::Hash:
        return "hash";
    case IndexBackend::Ordered:
        return "ordered";
    }
    return "?";
}

namespace {

/**
 * Hash backend: an open hash table. Probes are O(1); the paper's 10 us
 * DRAM hash-table budget (Section 5.2.1) anchors the modelled cost.
 */
class HashIndex final : public Index
{
  public:
    void
    upsert(u64 key, const ItemLoc &loc) override
    {
        map_[key] = loc;
    }

    bool erase(u64 key) override { return map_.erase(key) != 0; }

    const ItemLoc *
    find(u64 key) const override
    {
        auto it = map_.find(key);
        return it == map_.end() ? nullptr : &it->second;
    }

    std::size_t size() const override { return map_.size(); }

    Bytes
    memoryBytes() const override
    {
        // Buckets (one pointer each) + one heap node per entry.
        return map_.bucket_count() * sizeof(void *) +
               map_.size() * (sizeof(u64) + sizeof(ItemLoc) +
                              2 * sizeof(void *));
    }

    void
    forEach(const std::function<void(u64, const ItemLoc &)> &fn)
        const override
    {
        for (const auto &[k, loc] : map_)
            fn(k, loc);
    }

    SimTime
    probeCost(std::size_t) const override
    {
        return kProbe;
    }

    IndexBackend backend() const override { return IndexBackend::Hash; }

  private:
    /** Flat per-probe cost: hash + one cache-missy bucket walk. */
    static constexpr SimTime kProbe = 1200; // 1.2 us

    std::unordered_map<u64, ItemLoc> map_;
};

/**
 * Ordered backend: a red-black tree (KVell ships an rbtree index
 * variant). Probes are O(log n) pointer chases; iteration is sorted,
 * which range scans and deterministic dumps want.
 */
class OrderedIndex final : public Index
{
  public:
    void
    upsert(u64 key, const ItemLoc &loc) override
    {
        map_[key] = loc;
    }

    bool erase(u64 key) override { return map_.erase(key) != 0; }

    const ItemLoc *
    find(u64 key) const override
    {
        auto it = map_.find(key);
        return it == map_.end() ? nullptr : &it->second;
    }

    std::size_t size() const override { return map_.size(); }

    Bytes
    memoryBytes() const override
    {
        // One tree node (three pointers + color) per entry.
        return map_.size() * (sizeof(u64) + sizeof(ItemLoc) +
                              4 * sizeof(void *));
    }

    void
    forEach(const std::function<void(u64, const ItemLoc &)> &fn)
        const override
    {
        for (const auto &[k, loc] : map_)
            fn(k, loc);
    }

    SimTime
    probeCost(std::size_t items) const override
    {
        // One cache-missy pointer chase per tree level.
        const double levels =
            items < 2 ? 1.0 : std::ceil(std::log2(double(items)));
        return SimTime(levels) * kPerLevel;
    }

    IndexBackend backend() const override { return IndexBackend::Ordered; }

  private:
    /** Cost of one tree-level pointer chase. */
    static constexpr SimTime kPerLevel = 250; // 250 ns

    std::map<u64, ItemLoc> map_;
};

} // namespace

std::unique_ptr<Index>
makeIndex(IndexBackend b)
{
    switch (b) {
    case IndexBackend::Ordered:
        return std::make_unique<OrderedIndex>();
    case IndexBackend::Hash:
        break;
    }
    return std::make_unique<HashIndex>();
}

} // namespace pc::store
