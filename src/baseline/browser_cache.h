/**
 * @file
 * Browser URL-substring cache baseline (footnote 4 / Section 8 of the
 * paper).
 *
 * High-end smartphone browsers suggest previously visited sites whose
 * address contains the typed query as a substring. This serves only a
 * portion of *navigational* repeat queries — it has no notion of search
 * results, no community warm start, and nothing for non-navigational
 * queries — which is the paper's argument for a real search cloudlet.
 */

#ifndef PC_BASELINE_BROWSER_CACHE_H
#define PC_BASELINE_BROWSER_CACHE_H

#include <string>
#include <vector>

#include "workload/universe.h"

namespace pc::baseline {

/**
 * Substring-matching history cache.
 */
class BrowserSubstringCache
{
  public:
    /** @param universe Interprets pair ids. */
    explicit BrowserSubstringCache(const workload::QueryUniverse &universe)
        : universe_(&universe)
    {
    }

    /**
     * Would the browser's suggestion list satisfy this intent? True when
     * the query string matches (as substring) a previously visited URL
     * and that URL is the one the user wants.
     */
    bool wouldHit(const workload::PairRef &p) const;

    /** Record a visit (the user navigated to the pair's result). */
    void recordVisit(const workload::PairRef &p);

    /** Number of URLs in the history. */
    std::size_t historySize() const { return history_.size(); }

  private:
    const workload::QueryUniverse *universe_;
    std::vector<std::string> history_; ///< Visited URLs (decorations kept).
};

} // namespace pc::baseline

#endif // PC_BASELINE_BROWSER_CACHE_H
