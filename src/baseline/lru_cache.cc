#include "baseline/lru_cache.h"

#include "util/logging.h"

namespace pc::baseline {

LruPairCache::LruPairCache(std::size_t capacity)
    : capacity_(capacity)
{
    pc_assert(capacity_ >= 1, "LRU cache needs capacity >= 1");
}

bool
LruPairCache::lookup(const workload::PairRef &p)
{
    auto it = map_.find(key(p));
    if (it == map_.end())
        return false;
    order_.splice(order_.begin(), order_, it->second);
    return true;
}

bool
LruPairCache::contains(const workload::PairRef &p) const
{
    return map_.count(key(p)) != 0;
}

void
LruPairCache::insert(const workload::PairRef &p)
{
    const u64 k = key(p);
    auto it = map_.find(k);
    if (it != map_.end()) {
        order_.splice(order_.begin(), order_, it->second);
        return;
    }
    if (map_.size() >= capacity_) {
        const u64 victim = order_.back();
        order_.pop_back();
        map_.erase(victim);
        ++evictions_;
    }
    order_.push_front(k);
    map_[k] = order_.begin();
}

} // namespace pc::baseline
