#include "baseline/browser_cache.h"

#include <algorithm>

#include "util/strings.h"

namespace pc::baseline {

bool
BrowserSubstringCache::wouldHit(const workload::PairRef &p) const
{
    const auto &q = universe_->query(p.query).text;
    const auto &target = universe_->result(p.result).url;
    // The suggestion matches when the typed text is a substring of a
    // visited address; it satisfies the user only when that address is
    // the one they are after.
    for (const auto &url : history_) {
        if (url == target &&
            contains(stripUrlDecoration(url), q)) {
            return true;
        }
    }
    return false;
}

void
BrowserSubstringCache::recordVisit(const workload::PairRef &p)
{
    const auto &url = universe_->result(p.result).url;
    if (std::find(history_.begin(), history_.end(), url) == history_.end())
        history_.push_back(url);
}

} // namespace pc::baseline
