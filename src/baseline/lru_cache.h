/**
 * @file
 * Plain LRU (query, result) cache baseline.
 *
 * A generic client cache with no community warm start and no
 * popularity-aware content selection: it caches whatever the user
 * touches, evicting least-recently-used pairs at a fixed capacity.
 * Comparing it against PocketSearch isolates the value of the
 * community component and of volume-ranked content selection.
 */

#ifndef PC_BASELINE_LRU_CACHE_H
#define PC_BASELINE_LRU_CACHE_H

#include <list>
#include <unordered_map>

#include "workload/universe.h"

namespace pc::baseline {

/**
 * Fixed-capacity LRU cache over (query, result) pairs.
 */
class LruPairCache
{
  public:
    /** @param capacity Maximum pairs held. @pre capacity >= 1. */
    explicit LruPairCache(std::size_t capacity);

    /** True if the pair is cached; refreshes its recency when found. */
    bool lookup(const workload::PairRef &p);

    /** Membership test without recency side effects. */
    bool contains(const workload::PairRef &p) const;

    /** Insert a pair (evicting the LRU victim if full). */
    void insert(const workload::PairRef &p);

    /** Pairs currently held. */
    std::size_t size() const { return map_.size(); }

    /** Capacity. */
    std::size_t capacity() const { return capacity_; }

    /** Evictions so far. */
    u64 evictions() const { return evictions_; }

  private:
    static u64
    key(const workload::PairRef &p)
    {
        return (u64(p.query) << 32) | p.result;
    }

    std::size_t capacity_;
    std::list<u64> order_; ///< MRU at front.
    std::unordered_map<u64, std::list<u64>::iterator> map_;
    u64 evictions_ = 0;
};

} // namespace pc::baseline

#endif // PC_BASELINE_LRU_CACHE_H
