/**
 * @file
 * Generic pocket-cloudlet interface (Sections 3 and 7).
 *
 * PocketSearch is one instance of a broader family: every pocket
 * cloudlet owns flash space for its data, keeps an index in fast memory,
 * is refreshed from community/personal models, and competes with its
 * siblings and with user data for device resources. This interface is
 * what the multi-cloudlet resource-management experiments program
 * against.
 */

#ifndef PC_CORE_CLOUDLET_H
#define PC_CORE_CLOUDLET_H

#include <string>

#include "util/types.h"

namespace pc::core {

/**
 * Abstract pocket cloudlet, for device-level resource accounting.
 */
class Cloudlet
{
  public:
    virtual ~Cloudlet() = default;

    /** Service name ("search", "ads", "maps", ...). */
    virtual std::string name() const = 0;

    /** Index bytes held in fast memory (DRAM/PCM tier). */
    virtual Bytes indexBytes() const = 0;

    /** Data bytes held in bulk NVM (logical). */
    virtual Bytes dataBytes() const = 0;

    /** Lookups served so far. */
    virtual u64 lookups() const = 0;

    /** Lookups served locally (hits). */
    virtual u64 hits() const = 0;

    /** Hit rate; 0 when idle. */
    double
    hitRate() const
    {
        const u64 n = lookups();
        return n ? double(hits()) / double(n) : 0.0;
    }

    /**
     * Shrink toward a storage budget by evicting lowest-value content.
     * @return Bytes actually released.
     */
    virtual Bytes shrinkTo(Bytes data_budget) = 0;
};

} // namespace pc::core

#endif // PC_CORE_CLOUDLET_H
