/**
 * @file
 * Cache persistence across power cycles (Section 3.3).
 *
 * Flash survives a power cycle; DRAM does not. The paper's two-tier
 * design therefore commits the index to NAND and reloads it at boot
 * (the cost the proposed PCM tier would eliminate). This module is
 * that commit path: it serializes the full index state — query
 * strings, result hashes, scores, accessed flags — into a flash file,
 * and restores it into a fresh PocketSearch after "reboot". The result
 * database needs no separate snapshot: its files and headers are
 * already on flash and re-attach by themselves.
 *
 * Format (PCIX): magic, pair count, then per pair:
 *   u16 query length | query bytes | u64 url hash | double score |
 *   u8 accessed flag.
 */

#ifndef PC_CORE_PERSISTENCE_H
#define PC_CORE_PERSISTENCE_H

#include <string>

#include "core/pocket_search.h"

namespace pc::core {

/** Outcome of a restore. */
struct RestoreResult
{
    bool ok = false;          ///< Snapshot present and well-formed.
    std::size_t pairs = 0;    ///< Pairs restored.
    SimTime loadTime = 0;     ///< Flash read + deserialize time.
};

/**
 * Serialize the cache index into `file_name` on the store backing
 * `ps` (overwriting any previous snapshot).
 *
 * @param[out] time Accumulates the flash commit latency.
 * @return Bytes written.
 */
Bytes persistIndex(PocketSearch &ps, pc::simfs::FlashStore &store,
                   const std::string &file_name, SimTime &time);

/**
 * Restore a snapshot into a (freshly constructed) PocketSearch whose
 * result database has re-attached to the same store.
 */
RestoreResult restoreIndex(PocketSearch &ps,
                           pc::simfs::FlashStore &store,
                           const std::string &file_name);

} // namespace pc::core

#endif // PC_CORE_PERSISTENCE_H
