/**
 * @file
 * Crash-safe cache persistence across power cycles (Section 3.3).
 *
 * Flash survives a power cycle; DRAM does not. The paper's two-tier
 * design therefore commits the index to NAND and reloads it at boot
 * (the cost the proposed PCM tier would eliminate). This module is
 * that commit path: it serializes the full index state — query
 * strings, result hashes, scores, accessed flags — into flash, and
 * restores it into a fresh PocketSearch after "reboot". The result
 * database needs no separate snapshot: its files and headers are
 * already on flash and re-attach by themselves.
 *
 * A phone loses power whenever the battery runs out, so the snapshot
 * commit must assume it can be torn at any byte. The protocol is a
 * checksummed double-slot commit:
 *
 *   - the snapshot lives in two slot files, `<name>.s0` / `<name>.s1`;
 *   - each slot carries a format version, a monotonically increasing
 *     sequence number, and a trailing CRC-32 over everything before it;
 *   - persist writes the slot NOT holding the newest valid snapshot,
 *     then reads it back and verifies the checksum (write - verify -
 *     swap); the previous good snapshot is never overwritten until the
 *     new one is durable;
 *   - restore validates both slots and loads the valid one with the
 *     highest sequence number; a torn or bit-flipped slot is detected
 *     by its checksum and the restore falls back to the older good
 *     slot instead of loading garbage. Parsing is all-or-nothing: no
 *     partial state ever reaches the PocketSearch.
 *
 * Slot format (PCS2, little-endian host layout):
 *   magic "PCS2" | u32 version | u64 sequence | u32 pair count |
 *   per pair: u16 query length | query bytes | u64 url hash |
 *             double score | u8 accessed flag
 *   | u32 crc32 of all preceding bytes.
 *
 * Snapshots written by the legacy single-file "PCIX" format are still
 * readable (best effort — that format has no checksum).
 */

#ifndef PC_CORE_PERSISTENCE_H
#define PC_CORE_PERSISTENCE_H

#include <string>

#include "core/pocket_search.h"

namespace pc::core {

/** Outcome of a restore. */
struct RestoreResult
{
    bool ok = false;       ///< A well-formed snapshot was loaded.
    std::size_t pairs = 0; ///< Pairs restored.
    SimTime loadTime = 0;  ///< Flash read + deserialize time.
    u64 sequence = 0;      ///< Sequence number of the loaded snapshot.
    /** Slots whose checksum or structure was found corrupt. */
    u32 corruptSlots = 0;
    /** Loaded an older slot because a newer one was corrupt. */
    bool usedFallback = false;
    /** Loaded through the legacy un-checksummed PCIX path. */
    bool legacyFormat = false;
};

/** Outcome of a snapshot commit. */
struct PersistResult
{
    bool ok = false;      ///< Written AND verified on flash.
    Bytes bytes = 0;      ///< Slot size written.
    u64 sequence = 0;     ///< Sequence number of the new snapshot.
    std::string slot;     ///< Slot file that received the snapshot.
};

/**
 * Serialize the cache index into the inactive snapshot slot of
 * `file_name`, verify the write, and make it the newest snapshot.
 * On power loss mid-commit the previous slot remains intact.
 *
 * @param[out] time Accumulates the flash commit + verify latency.
 */
PersistResult persistIndex(PocketSearch &ps, pc::simfs::FlashStore &store,
                           const std::string &file_name, SimTime &time);

/**
 * Restore the newest valid snapshot into a (freshly constructed)
 * PocketSearch whose result database has re-attached to the same
 * store. Corrupt slots are skipped, never partially applied.
 */
RestoreResult restoreIndex(PocketSearch &ps,
                           pc::simfs::FlashStore &store,
                           const std::string &file_name);

} // namespace pc::core

#endif // PC_CORE_PERSISTENCE_H
