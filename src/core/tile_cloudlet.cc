#include "core/tile_cloudlet.h"

#include <algorithm>

#include "core/pocket_search.h"
#include "util/logging.h"
#include "util/strings.h"

namespace pc::core {

TileCloudlet::TileCloudlet(pc::simfs::FlashStore &store,
                           const TileCloudletConfig &cfg)
    : store_(store),
      cfg_(cfg),
      zipf_(cfg.universeItems, cfg.popularitySkew),
      file_(store.create(cfg.name + ".dat"))
{
    pc_assert(cfg_.itemSize > 0, "item size must be positive");
}

Bytes
TileCloudlet::indexBytes() const
{
    return Bytes(cached_.size()) * cfg_.indexEntryBytes;
}

Bytes
TileCloudlet::dataBytes() const
{
    return Bytes(cached_.size()) * cfg_.itemSize;
}

void
TileCloudlet::rewriteFile(SimTime &time)
{
    // Tile payloads are opaque; model them as zero-filled blocks of the
    // right aggregate size so flash accounting stays faithful.
    const std::string blob(std::size_t(dataBytes()), '\0');
    store_.truncateAndWrite(file_, blob, time);
}

void
TileCloudlet::fillTop(u64 count, SimTime &time)
{
    count = std::min(count, cfg_.universeItems);
    cached_.clear();
    cached_.reserve(count);
    for (u64 i = 0; i < count; ++i)
        cached_.insert(i);
    topK_ = count;
    rewriteFile(time);
}

bool
TileCloudlet::access(u64 id, SimTime &time)
{
    ++lookups_;
    if (!cached_.count(id))
        return false;
    ++hits_;
    // One item read: open the tile file and read the item's extent.
    pc::simfs::FileId f = store_.open(cfg_.name + ".dat", time);
    pc_assert(f == file_, "tile file changed identity");
    // Items are laid out by rank; ranks are a prefix so offset = rank.
    std::string out;
    store_.read(file_, id * cfg_.itemSize, cfg_.itemSize, out, time);
    return true;
}

double
TileCloudlet::expectedHitRate() const
{
    if (topK_ == 0)
        return 0.0;
    return zipf_.cdf(topK_ - 1);
}

Bytes
TileCloudlet::shrinkTo(Bytes data_budget)
{
    const u64 keep = std::min<u64>(data_budget / cfg_.itemSize, topK_);
    if (keep >= topK_)
        return 0;
    const Bytes before = dataBytes();
    // Evict lowest-popularity items (the highest cached ranks).
    for (u64 r = keep; r < topK_; ++r)
        cached_.erase(r);
    topK_ = keep;
    SimTime t = 0;
    rewriteFile(t);
    return before - dataBytes();
}

Bytes
SearchCloudlet::indexBytes() const
{
    return ps_.dramBytes();
}

Bytes
SearchCloudlet::dataBytes() const
{
    return ps_.flashLogicalBytes();
}

u64
SearchCloudlet::lookups() const
{
    return ps_.stats().lookups;
}

u64
SearchCloudlet::hits() const
{
    return ps_.stats().queryHits;
}

} // namespace pc::core
