#include "core/suggest.h"

#include <algorithm>

#include "util/logging.h"

namespace pc::core {

std::size_t
SuggestIndex::lowerBound(std::string_view query) const
{
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), query,
        [](const Entry &e, std::string_view q) { return e.query < q; });
    return std::size_t(it - entries_.begin());
}

bool
SuggestIndex::insert(const std::string &query, double score)
{
    const std::size_t i = lowerBound(query);
    if (i < entries_.size() && entries_[i].query == query) {
        entries_[i].score = std::max(entries_[i].score, score);
        return false;
    }
    entries_.insert(entries_.begin() + std::ptrdiff_t(i),
                    Entry{query, score});
    return true;
}

bool
SuggestIndex::erase(const std::string &query)
{
    const std::size_t i = lowerBound(query);
    if (i >= entries_.size() || entries_[i].query != query)
        return false;
    entries_.erase(entries_.begin() + std::ptrdiff_t(i));
    return true;
}

void
SuggestIndex::clear()
{
    entries_.clear();
}

std::vector<Suggestion>
SuggestIndex::suggest(std::string_view prefix, u32 k,
                      SimTime *time) const
{
    if (time)
        *time += kKeystrokeLatency;
    std::vector<Suggestion> out;
    if (k == 0)
        return out;

    // The matching range is [first entry >= prefix, first entry whose
    // string no longer starts with prefix).
    std::size_t i = lowerBound(prefix);
    std::vector<const Entry *> matches;
    for (; i < entries_.size(); ++i) {
        const std::string &q = entries_[i].query;
        if (q.size() < prefix.size() ||
            std::string_view(q).substr(0, prefix.size()) != prefix)
            break;
        matches.push_back(&entries_[i]);
    }

    // Top-k by score (stable for equal scores: lexicographic).
    std::sort(matches.begin(), matches.end(),
              [](const Entry *a, const Entry *b) {
                  if (a->score != b->score)
                      return a->score > b->score;
                  return a->query < b->query;
              });
    const std::size_t n = std::min<std::size_t>(k, matches.size());
    out.reserve(n);
    for (std::size_t j = 0; j < n; ++j)
        out.push_back(Suggestion{matches[j]->query, matches[j]->score});
    return out;
}

Bytes
SuggestIndex::memoryBytes() const
{
    Bytes total = 0;
    for (const auto &e : entries_)
        total += e.query.size() + sizeof(double) + 16; // string + score
    return total;
}

} // namespace pc::core
