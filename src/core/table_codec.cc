#include "core/table_codec.h"

#include <cstring>

namespace pc::core {

namespace {

constexpr char kMagic[4] = {'P', 'C', 'H', 'T'};
constexpr std::size_t kHeaderBytes = 4 + 4; // magic + u32 count
constexpr std::size_t kRecordBytes = 8 + 8 + 8 + 1;

template <typename T>
void
put(std::string &out, T v)
{
    char buf[sizeof(T)];
    std::memcpy(buf, &v, sizeof(T));
    out.append(buf, sizeof(T));
}

template <typename T>
T
get(const char *p)
{
    T v;
    std::memcpy(&v, p, sizeof(T));
    return v;
}

} // namespace

Bytes
wireSize(std::size_t pairs)
{
    return kHeaderBytes + pairs * kRecordBytes;
}

std::string
encodeTable(const QueryHashTable &table)
{
    std::string out;
    out.reserve(wireSize(table.pairs()));
    out.append(kMagic, 4);
    put<u32>(out, u32(table.pairs()));
    table.forEachPair([&](u64 query_fnv, const ResultRef &r) {
        put<u64>(out, query_fnv);
        put<u64>(out, r.urlHash);
        put<double>(out, r.score);
        put<u8>(out, r.userAccessed ? 1 : 0);
    });
    return out;
}

std::optional<std::vector<WirePair>>
decodeTable(std::string_view blob)
{
    if (blob.size() < kHeaderBytes ||
        std::memcmp(blob.data(), kMagic, 4) != 0)
        return std::nullopt;
    const u32 count = get<u32>(blob.data() + 4);
    if (blob.size() != kHeaderBytes + std::size_t(count) * kRecordBytes)
        return std::nullopt;

    std::vector<WirePair> out;
    out.reserve(count);
    const char *p = blob.data() + kHeaderBytes;
    for (u32 i = 0; i < count; ++i) {
        WirePair w;
        w.queryFnv = get<u64>(p);
        w.urlHash = get<u64>(p + 8);
        w.score = get<double>(p + 16);
        w.accessed = get<u8>(p + 24) != 0;
        out.push_back(w);
        p += kRecordBytes;
    }
    return out;
}

} // namespace pc::core
