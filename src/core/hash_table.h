/**
 * @file
 * The DRAM query hash table (Figure 10 of the paper).
 *
 * Links query strings to cached search results. Every entry belongs to
 * exactly one query and holds: the query's hash, two search-result slots
 * (each a 64-bit URL hash — which doubles as the database record key —
 * plus a ranking score), and a 64-bit flags word whose low bits record
 * whether the user has ever accessed each slot's (query, result) pair.
 * Queries with more than two results chain additional entries by varying
 * the hash function's second argument (the slot index).
 *
 * Storing exactly two results per entry minimizes the table's memory
 * footprint for the observed results-per-query distribution (Figure 11).
 */

#ifndef PC_CORE_HASH_TABLE_H
#define PC_CORE_HASH_TABLE_H

#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/cache_content.h"
#include "util/hash.h"
#include "util/types.h"

namespace pc::core {

/** One search result as seen from the hash table. */
struct ResultRef
{
    u64 urlHash = 0;          ///< Database record key.
    double score = 0.0;       ///< Current ranking score.
    bool userAccessed = false; ///< Flag bit: user clicked this pair.
};

/**
 * Query -> search-result hash table with two-slot entries and chained
 * overflow.
 */
class QueryHashTable
{
  public:
    /** @param layout Entry layout (slots per entry; footprint model). */
    explicit QueryHashTable(HashEntryLayout layout = {});

    /**
     * All cached results for a query, sorted by descending score.
     * Models the paper's measured ~10us lookup by adding a constant to
     * `time` when provided.
     */
    std::vector<ResultRef> lookup(std::string_view query,
                                  SimTime *time = nullptr) const;

    /** True if the (query, result) pair is cached. */
    bool containsPair(std::string_view query, u64 url_hash) const;

    /**
     * The cached state of one pair (score + accessed flag), or nullopt
     * if it is not cached. Delta application reads this to decide
     * between install, conflict-merge and eviction-skip.
     */
    std::optional<ResultRef> findPair(std::string_view query,
                                      u64 url_hash) const;

    /**
     * Insert a pair; no-op if already present (score left untouched).
     * @return True if newly inserted.
     */
    bool insert(std::string_view query, u64 url_hash, double score,
                bool user_accessed = false);

    /**
     * Apply a user click (Section 5.3): the clicked pair's score rises
     * by 1 (inserting it with score 1 if absent) and every *unclicked*
     * sibling of the same query decays by e^-lambda. The clicked pair's
     * accessed flag is set.
     *
     * @return True if the pair already existed before the click.
     */
    bool applyClick(std::string_view query, u64 url_hash, double lambda);

    /** Overwrite a pair's score (server-side conflict resolution). */
    bool setScore(std::string_view query, u64 url_hash, double score);

    /** Set the user-accessed flag of a pair. */
    bool markAccessed(std::string_view query, u64 url_hash);

    /**
     * Remove a pair; compacts the query's slot chain so lookups remain
     * contiguous. @return True if the pair was present.
     */
    bool erasePair(std::string_view query, u64 url_hash);

    /** Drop every pair of a query. @return Number of pairs removed. */
    std::size_t eraseQuery(std::string_view query);

    /**
     * Visit every cached (query, result) pair as (query fnv hash,
     * result slot). Used by the server side of the update protocol,
     * which recognizes hashes by re-hashing its own logs.
     */
    template <typename Fn>
    void
    forEachPair(Fn fn) const
    {
        for (const auto &[key, e] : table_) {
            (void)key;
            for (u32 i = 0; i < layout_.resultsPerEntry; ++i) {
                if (e.sr[i].urlHash != 0)
                    fn(e.queryHash, e.sr[i]);
            }
        }
    }

    /** Drop all entries. */
    void
    clear()
    {
        table_.clear();
        pairs_ = 0;
    }

    /** Number of hash-table entries (not pairs). */
    std::size_t entries() const { return table_.size(); }

    /** Number of cached (query, result) pairs. */
    std::size_t pairs() const { return pairs_; }

    /** Modelled DRAM footprint (Figure 11's layout arithmetic). */
    Bytes memoryBytes() const
    {
        return Bytes(table_.size()) * layout_.entryBytes();
    }

    /** Layout in use. */
    const HashEntryLayout &layout() const { return layout_; }

    /** Modelled latency of one lookup (paper Table 4: ~10us). */
    static constexpr SimTime kLookupLatency = 10 * kMicrosecond;

  private:
    /** In-memory entry; mirrors Figure 10's fields. */
    struct Entry
    {
        u64 queryHash = 0; ///< hash(query) — same for all chain slots.
        ResultRef sr[8];   ///< Up to layout_.resultsPerEntry used.
        u64 flags = 0;     ///< Reserved; accessed bits live in sr[].
    };

    /** Chain-walk bound: slots never exceed this (sanity guard). */
    static constexpr u32 kMaxChain = 1024;

    const Entry *findEntry(std::string_view query, u32 slot) const;
    Entry *findEntry(std::string_view query, u32 slot);

    /** Collect (entry slot key, result index) of a pair, if present. */
    bool locate(std::string_view query, u64 url_hash, u64 &key,
                u32 &idx) const;

    HashEntryLayout layout_;
    std::unordered_map<u64, Entry> table_;
    std::size_t pairs_ = 0;
};

} // namespace pc::core

#endif // PC_CORE_HASH_TABLE_H
