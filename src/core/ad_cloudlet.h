/**
 * @file
 * The mobile-ads side of PocketSearch (Sections 5 and 7).
 *
 * The paper's cloudlet is a "search and advertisement" cache: when the
 * user submits a query, both the search and the ad cloudlet are
 * invoked for it. Ads are keyed by query like search results — a
 * (query, ad) pair is cached when the community clicks that ad for
 * that query — and ad banners live in their own flash files.
 *
 * Section 7's coordination insight is explicit: "If a particular query
 * misses in the local search cache, there is not much benefit in
 * hitting the ad cache because the latency bottleneck to service this
 * query will be waking up the radio" — and eviction should drop
 * closely-related items together. AdCloudlet therefore exposes the
 * hooks CloudletCoordinator needs: query-keyed lookup and query-keyed
 * eviction.
 */

#ifndef PC_CORE_AD_CLOUDLET_H
#define PC_CORE_AD_CLOUDLET_H

#include <string>
#include <unordered_map>
#include <vector>

#include "core/cloudlet.h"
#include "simfs/flash_store.h"
#include "util/types.h"

namespace pc::core {

/** One cached advertisement. */
struct AdRecord
{
    std::string advertiser; ///< Display name.
    std::string banner;     ///< Banner payload (text stand-in).
    std::string targetUrl;  ///< Click-through destination.
};

/** Ad cloudlet configuration. */
struct AdCloudletConfig
{
    /** Banner payload size (Table 2: ~5 KB per ad banner). */
    Bytes bannerSize = 5 * kKiB;
    /** Per-entry index bytes (query hash + ad id + revenue weight). */
    Bytes indexEntryBytes = 24;
    /** Modelled flash fetch time for one banner. */
    SimTime fetchLatency = 6 * kMillisecond;
};

/**
 * Query-keyed advertisement cache.
 */
class AdCloudlet : public Cloudlet
{
  public:
    /**
     * @param store Flash store holding the banner file. Must outlive
     *        the cloudlet.
     */
    explicit AdCloudlet(pc::simfs::FlashStore &store,
                        const AdCloudletConfig &cfg = {});

    std::string name() const override { return "ads"; }
    Bytes indexBytes() const override;
    Bytes dataBytes() const override;
    u64 lookups() const override { return lookups_; }
    u64 hits() const override { return hits_; }
    Bytes shrinkTo(Bytes data_budget) override;

    /**
     * Install an ad for a query (the community push pairs popular
     * queries with their top ad).
     * @param[out] time Accumulates flash write latency.
     */
    void installAd(const std::string &query, const AdRecord &ad,
                   SimTime &time);

    /** True if a query has a cached ad (no stats side effects). */
    bool containsQuery(const std::string &query) const;

    /**
     * Serve the ad for a query.
     * @param[out] ad The banner, on a hit.
     * @param[out] time Accumulates flash fetch latency on a hit.
     * @return True on a hit.
     */
    bool serve(const std::string &query, AdRecord &ad, SimTime &time);

    /**
     * Coordinated eviction (Section 7): drop the ad cached for a
     * query, e.g. because the search cloudlet evicted that query.
     * @return True if an ad was evicted.
     */
    bool evictQuery(const std::string &query);

    /** Number of cached (query -> ad) entries. */
    std::size_t entries() const { return ads_.size(); }

  private:
    /** Rebuild the banner payload file to the current data size. */
    void rewriteFile(SimTime &time);

    pc::simfs::FlashStore &store_;
    AdCloudletConfig cfg_;
    pc::simfs::FileId file_;
    std::unordered_map<std::string, AdRecord> ads_;
    u64 lookups_ = 0;
    u64 hits_ = 0;
};

} // namespace pc::core

#endif // PC_CORE_AD_CLOUDLET_H
