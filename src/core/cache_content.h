/**
 * @file
 * Cache content generation (Section 5.1 of the paper).
 *
 * Server-side selection of which (query, search result) pairs the phone
 * should cache. Starting from the volume-sorted triplet table, pairs are
 * added top-down until either a memory threshold (flash or DRAM budget)
 * or the cache saturation threshold (normalized volume of the next pair
 * falls below Vth) is reached. Each selected pair carries a ranking
 * score: its volume normalized across all selected results for the same
 * query.
 */

#ifndef PC_CORE_CACHE_CONTENT_H
#define PC_CORE_CACHE_CONTENT_H

#include <vector>

#include "logs/triplets.h"
#include "workload/universe.h"

namespace pc::core {

using logs::Triplet;
using logs::TripletTable;
using workload::PairRef;
using workload::QueryUniverse;

/** One cached (query, result) pair with its community ranking score. */
struct ScoredPair
{
    PairRef pair{0, 0};
    double score = 0.0; ///< Volume share among the query's cached results.
    u64 volume = 0;     ///< Raw click volume (for diagnostics).
};

/** Which stopping rule content selection uses. */
enum class ThresholdKind
{
    FlashBudget,     ///< Stop when result records exceed a flash budget.
    DramBudget,      ///< Stop when the hash table exceeds a DRAM budget.
    CacheSaturation, ///< Stop when normalized volume drops below Vth.
    VolumeShare,     ///< Stop when cumulative share reaches a target.
};

/** Content selection policy. */
struct ContentPolicy
{
    ThresholdKind kind = ThresholdKind::VolumeShare;
    Bytes flashBudget = 1 * kMiB;    ///< For FlashBudget.
    Bytes dramBudget = 200 * kKiB;   ///< For DramBudget.
    double saturationVth = 1e-5;     ///< For CacheSaturation.
    double volumeShare = 0.55;       ///< For VolumeShare (paper's choice).
};

/** Selected cache contents plus footprint accounting. */
struct CacheContents
{
    std::vector<ScoredPair> pairs;   ///< Selected pairs, by volume.
    std::size_t uniqueResults = 0;   ///< Distinct results among pairs.
    Bytes flashBytes = 0;            ///< Estimated DB bytes (records only).
    Bytes dramBytes = 0;             ///< Estimated hash-table bytes.
    double cumulativeShare = 0.0;    ///< Share of log volume covered.
};

/** Hash-table entry layout constants (Figure 10). */
struct HashEntryLayout
{
    /** Search-result slots per entry (the paper picks 2; Figure 11). */
    u32 resultsPerEntry = 2;
    /** Bytes per slot: 8 (url hash) + 8 (score). */
    static constexpr Bytes slotBytes = 16;
    /** Fixed bytes per entry: 8 (query hash) + 8 (flags). */
    static constexpr Bytes fixedBytes = 16;
    /**
     * Container overhead per entry: open-addressing headroom and
     * bookkeeping. This is what makes one-result entries wasteful and
     * puts Figure 11's minimum at two results per entry.
     */
    static constexpr Bytes overheadBytes = 16;

    /** Bytes of one entry. */
    Bytes entryBytes() const
    {
        return fixedBytes + overheadBytes + slotBytes * resultsPerEntry;
    }
};

/**
 * Builds cache contents from a triplet table.
 */
class CacheContentBuilder
{
  public:
    /**
     * @param universe Interprets pair ids and sizes result records.
     * @param layout Hash-table layout used for DRAM footprint estimates.
     */
    explicit CacheContentBuilder(const QueryUniverse &universe,
                                 HashEntryLayout layout = {});

    /** Select contents under a policy. */
    CacheContents build(const TripletTable &table,
                        const ContentPolicy &policy) const;

    /**
     * Footprint of a prefix of the triplet table (used by the Figure 8
     * sweep): DRAM (hash table) and flash (record DB) bytes after caching
     * the top `k` pairs.
     */
    void footprintOfTop(const TripletTable &table, std::size_t k,
                        Bytes &dram, Bytes &flash) const;

    /**
     * DRAM footprint of a pair multiset under an arbitrary
     * results-per-entry layout (the Figure 11 sweep).
     */
    Bytes dramFootprint(const std::vector<ScoredPair> &pairs,
                        HashEntryLayout layout) const;

  private:
    /** Assign per-query-normalized scores to a pair prefix. */
    void scorePairs(std::vector<ScoredPair> &pairs) const;

    const QueryUniverse &universe_;
    HashEntryLayout layout_;
};

} // namespace pc::core

#endif // PC_CORE_CACHE_CONTENT_H
