/**
 * @file
 * Wire format for the hash-table exchange of the update protocol
 * (Figure 14).
 *
 * The phone uploads its hash table to the server every night; the
 * server parses it by re-hashing its own logs. This codec is the
 * actual byte format of that exchange: a fixed header plus one
 * fixed-width record per cached (query, result) pair — query hash,
 * result hash, ranking score, and the user-accessed flag bit the
 * server's pruning step keys on.
 */

#ifndef PC_CORE_TABLE_CODEC_H
#define PC_CORE_TABLE_CODEC_H

#include <optional>
#include <string>
#include <vector>

#include "core/hash_table.h"

namespace pc::core {

/** One decoded wire record. */
struct WirePair
{
    u64 queryFnv = 0;  ///< fnv1a of the query string.
    u64 urlHash = 0;   ///< Result record key.
    double score = 0;  ///< Current ranking score.
    bool accessed = false; ///< User ever clicked this pair.

    bool operator==(const WirePair &o) const = default;
};

/** Encode a hash table into the upload blob. */
std::string encodeTable(const QueryHashTable &table);

/**
 * Decode an upload blob.
 * @return The records, or std::nullopt on a malformed blob (bad magic,
 *         truncated payload, or length mismatch).
 */
std::optional<std::vector<WirePair>> decodeTable(std::string_view blob);

/** Exact wire size of a table with `pairs` cached pairs. */
Bytes wireSize(std::size_t pairs);

} // namespace pc::core

#endif // PC_CORE_TABLE_CODEC_H
