/**
 * @file
 * Cross-cloudlet coordination (Section 7 of the paper).
 *
 * Two policies the paper calls for, made concrete:
 *
 *  - *Serving*: search and ads are invoked for the same query, but if
 *    the query misses in the search cache there is no benefit in
 *    probing the ad cache — the radio wake-up dominates anyway, and
 *    the cloud response carries its own ads. The coordinator probes
 *    ads only after a search hit.
 *
 *  - *Eviction*: closely related items should leave together. When
 *    queries are evicted from the search cache, the coordinator drops
 *    their ads too; an ad whose query can no longer be served locally
 *    is dead weight.
 */

#ifndef PC_CORE_COORDINATOR_H
#define PC_CORE_COORDINATOR_H

#include <string>
#include <vector>

#include "core/ad_cloudlet.h"
#include "core/pocket_search.h"

namespace pc::core {

/** What the user sees for one query: results plus (maybe) an ad. */
struct ServedPage
{
    LookupOutcome search;   ///< The search-side outcome.
    bool adShown = false;   ///< An ad accompanied the local results.
    AdRecord ad;            ///< The banner, when adShown.
    SimTime latency = 0;    ///< Search + ad serving time.
};

/** Coordination statistics. */
struct CoordinatorStats
{
    u64 pagesServed = 0;
    u64 searchHits = 0;
    u64 adProbesSkipped = 0; ///< Ad cache untouched after search miss.
    u64 adHits = 0;
    u64 adsEvictedWithQueries = 0;
};

/**
 * Serve-and-evict coordinator over the search and ad cloudlets.
 */
class CloudletCoordinator
{
  public:
    /**
     * @param search The search cache; must outlive the coordinator.
     * @param ads The ad cache; must outlive the coordinator.
     */
    CloudletCoordinator(PocketSearch &search, AdCloudlet &ads)
        : search_(search), ads_(ads)
    {
    }

    /**
     * Serve one query across both cloudlets under the Section 7 rule:
     * the ad cache is probed only when the search cache hits.
     */
    ServedPage serveQuery(const std::string &query, u32 max_results = 2);

    /**
     * Coordinated eviction: remove queries from the search cache and
     * their ads from the ad cache in one sweep.
     * @return Number of (query, ad) pairs removed from the ad cache.
     */
    std::size_t evictQueries(const std::vector<std::string> &queries);

    /** Coordination statistics. */
    const CoordinatorStats &stats() const { return stats_; }

  private:
    PocketSearch &search_;
    AdCloudlet &ads_;
    CoordinatorStats stats_;
};

} // namespace pc::core

#endif // PC_CORE_COORDINATOR_H
