/**
 * @file
 * Cache management / update protocol (Section 5.4, Figure 14).
 *
 * Periodically (nightly, while the phone charges) the device ships its
 * hash table to the server. The server prunes every community pair the
 * user never accessed, expires user pairs whose score decayed below a
 * threshold, merges in the freshly extracted popular set (conflicts
 * resolved by keeping the maximum score), and sends back a new hash
 * table plus patch files for the result database. The exchange should
 * stay under ~1.5 MB (the paper's 200 KB table + 1 MB records).
 */

#ifndef PC_CORE_CACHE_MANAGER_H
#define PC_CORE_CACHE_MANAGER_H

#include <unordered_map>
#include <vector>

#include "core/delta.h"
#include "core/pocket_search.h"
#include "core/table_codec.h"
#include "logs/triplets.h"
#include "obs/metrics.h"
#include "util/stats.h"

namespace pc::core {

/** Accounting of one update cycle. */
struct UpdateStats
{
    Bytes bytesToServer = 0; ///< Uploaded hash table size.
    Bytes bytesToPhone = 0;  ///< New table + patch records.
    std::size_t pairsKept = 0;    ///< User-accessed pairs retained.
    std::size_t pairsExpired = 0; ///< User pairs dropped (low score).
    std::size_t pairsPruned = 0;  ///< Untouched community pairs dropped.
    std::size_t pairsAdded = 0;   ///< Fresh popular pairs installed.
    std::size_t conflicts = 0;    ///< Pairs present on both sides.
    std::size_t recordsPatched = 0; ///< New DB records shipped.

    /** Export as "core.update.*" counters. */
    CounterBag toCounters() const;

    /**
     * Fold one cycle's accounting into a registry (bumps the
     * "core.update.*" counters, so successive cycles accumulate).
     */
    void publishMetrics(obs::MetricRegistry &reg) const;
};

/** Update policy knobs. */
struct UpdatePolicy
{
    /** Content selection for the fresh popular set. */
    ContentPolicy content{};
    /**
     * User pairs whose score decayed below this are expired (the
     * paper's "not accessed over the last 3 months" rule, expressed as
     * the score floor the exponential decay reaches).
     */
    double expiryScore = 0.05;
};

/**
 * Server side of the update protocol.
 *
 * The real server recognizes the hashes the phone uploads because it
 * can hash its own logs; the simulation mirrors that with a reverse map
 * from (query fnv, url hash) to universe pair ids.
 */
class CacheManager
{
  public:
    /** @param universe Shared popularity/world model. */
    explicit CacheManager(const QueryUniverse &universe);

    /**
     * Run one full update cycle against a device cache.
     *
     * @param ps Device cache to update in place.
     * @param fresh Triplet table of the latest log window.
     * @param policy Update policy.
     * @param[out] time Accumulates device-side flash patch latency.
     * @return Accounting of the cycle.
     */
    UpdateStats update(PocketSearch &ps, const logs::TripletTable &fresh,
                       const UpdatePolicy &policy, SimTime &time) const;

    /**
     * Apply an incremental community delta instead of a full rebuild
     * (the cloud update service's sync path — see core/delta.h).
     */
    static DeltaApplyStats applyDelta(PocketSearch &ps,
                                      const CommunityDelta &delta,
                                      SimTime &time)
    {
        return applyCommunityDelta(ps, delta, time);
    }

  private:
    /** Pair + retained state read back from the device table. */
    struct DevicePair
    {
        workload::PairRef pair;
        double score;
        bool accessed;
    };

    /** Decode an uploaded table blob into universe pairs. */
    std::vector<DevicePair>
    parseUpload(const std::vector<WirePair> &wire) const;

    const QueryUniverse &universe_;
    /** (fnv1a(query) ^ urlHash(url)) -> pair, for hash matching. */
    std::unordered_map<u64, workload::PairRef> reverse_;
};

} // namespace pc::core

#endif // PC_CORE_CACHE_MANAGER_H
