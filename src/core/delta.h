/**
 * @file
 * Community-model delta sync — the incremental half of the update
 * protocol (Section 5.4), hardened for real links.
 *
 * A CommunityDelta carries the add / evict / re-rank lists between two
 * versioned cache-content selections. The cloud update service
 * computes one with diffContents(); the device applies it with
 * tryApplyCommunityDelta(). A delta from version 0 is a *full
 * install*: the target contents in their entirety, applied with
 * reconcile semantics (stale community pairs the user never touched
 * are dropped, so a recovered device converges to exactly the target
 * model).
 *
 * Wire integrity: encodeDelta() is the canonical, deterministic byte
 * serialization (byte-equal encodings <=> identical deltas — the
 * sharded-build equality tests key on this). frameDelta() wraps the
 * encoding in a CRC-32 integrity frame (magic, length, payload,
 * checksum); unframeDelta() verifies length and checksum before
 * decoding, so a bit flipped in flight or a transfer torn at any byte
 * boundary is rejected instead of applied. CRC-32 detects all 1- and
 * 2-bit errors at these payload sizes; the threat model is link
 * corruption, not an adversary (see util/crc32.h).
 *
 * Apply integrity: tryApplyCommunityDelta() is transactional —
 * validate-then-commit. Every pair id is range-checked against the
 * universe and every evict/re-rank target must resolve in the device
 * table *before* any mutation; a delta that does not fit the device's
 * actual state is rejected whole, leaving PocketSearch untouched. The
 * commit phase only performs operations validation proved cannot
 * fail, so a crash mid-apply recovers through the PCS2 double-slot
 * snapshot into either the old or the new state, never a torn one.
 *
 * Personalization rules (the commit phase):
 *  - adds already cached (the user's clicks got there first) merge by
 *    maximum score and keep the accessed flag;
 *  - evicts skip user-accessed pairs (the paper's retention rule);
 *  - re-ranks of accessed pairs only ratchet the score upward.
 */

#ifndef PC_CORE_DELTA_H
#define PC_CORE_DELTA_H

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/cache_content.h"
#include "core/pocket_search.h"

namespace pc::core {

/** Incremental update between two community-model versions. */
struct CommunityDelta
{
    u64 fromVersion = 0; ///< Base version; 0 = full install.
    u64 toVersion = 0;   ///< Target version.
    /** Pairs in `to` but not `from` (install with score). */
    std::vector<ScoredPair> adds;
    /** Pairs in `from` but not `to` (remove unless user-accessed). */
    std::vector<workload::PairRef> evicts;
    /** Pairs in both whose score changed (new score). */
    std::vector<ScoredPair> reranks;

    /** Total operation count. */
    std::size_t ops() const
    {
        return adds.size() + evicts.size() + reranks.size();
    }

    /** True if the delta carries no operations. */
    bool empty() const { return ops() == 0; }
};

/** Accounting of one delta application. */
struct DeltaApplyStats
{
    std::size_t added = 0;        ///< Pairs newly installed.
    std::size_t evicted = 0;      ///< Pairs removed by evict ops.
    std::size_t reranked = 0;     ///< Re-rank ops applied.
    std::size_t keptAccessed = 0; ///< Evictions skipped: user pairs.
    std::size_t conflicts = 0;    ///< Adds merged into existing pairs.
    std::size_t staleEvicted = 0; ///< Full-install reconcile removals.
    std::size_t recordsPatched = 0; ///< New flash records shipped.
};

/** Why a delta was rejected (device state left untouched). */
enum class DeltaApplyError
{
    None,
    BadPairId,           ///< A pair id is outside the universe.
    MissingEvictTarget,  ///< An evict names a pair the device lacks.
    MissingRerankTarget, ///< A re-rank names a pair the device lacks.
};

/** Display name of an apply error. */
const char *deltaApplyErrorName(DeltaApplyError e);

/** Outcome of a transactional delta application. */
struct DeltaApplyResult
{
    bool ok = false;
    DeltaApplyError error = DeltaApplyError::None;
    DeltaApplyStats stats{};
};

/**
 * Diff two content selections into a delta. Deterministic: add and
 * re-rank lists follow `to.pairs` order, the evict list follows
 * `from.pairs` order, so the same two selections always produce the
 * same (and byte-identically encodable) delta.
 */
CommunityDelta diffContents(const CacheContents &from,
                            const CacheContents &to, u64 from_version,
                            u64 to_version);

/**
 * Transactionally apply a delta to a device cache: validate every
 * operation against the live table, then commit all of them or none.
 *
 * @param ps Device cache.
 * @param delta The update (fromVersion 0 = full install; onto a
 *        non-empty cache it reconciles — see file comment).
 * @param[out] time Accumulates flash write latency (commit phase only;
 *        a rejected delta costs no flash time).
 * @return ok + stats, or the first validation error with zero stats.
 */
DeltaApplyResult tryApplyCommunityDelta(PocketSearch &ps,
                                        const CommunityDelta &delta,
                                        SimTime &time);

/**
 * Legacy strict apply: asserts the delta validates. Callers that
 * control both ends (tests, the in-process cache manager) use this;
 * anything that received bytes over a link uses the try form.
 */
DeltaApplyStats applyCommunityDelta(PocketSearch &ps,
                                    const CommunityDelta &delta,
                                    SimTime &time);

/**
 * Canonical payload serialization: fixed-width little-endian fields,
 * no map iteration anywhere. Byte-equal encodings <=> equal deltas.
 */
std::string encodeDelta(const CommunityDelta &delta);

/**
 * Decode an encodeDelta() payload. Rejects bad magic, truncated or
 * oversized payloads, and op counts inconsistent with the byte length
 * (checked before any allocation).
 */
std::optional<CommunityDelta> decodeDelta(std::string_view payload);

/** Bytes frameDelta() adds around the payload (header + checksum). */
inline constexpr Bytes kDeltaFrameOverhead = 12;

/**
 * Wrap an encoded delta in the integrity frame the radio actually
 * ships: magic, payload length, payload, CRC-32 of the payload.
 */
std::string frameDelta(const CommunityDelta &delta);

/**
 * Verify and decode one received frame. Any corruption — flipped bit,
 * truncation at any byte boundary, trailing garbage, length/checksum
 * mismatch — yields nullopt; a frame only decodes if it is exactly
 * what the sender framed.
 */
std::optional<CommunityDelta> unframeDelta(std::string_view frame);

/** Which integrity check a received frame failed. */
enum class FrameError : u8
{
    None = 0,       ///< Frame verified and decoded.
    TooShort,       ///< Shorter than header + checksum.
    BadMagic,       ///< Frame magic mismatch.
    LengthMismatch, ///< Declared length != delivered bytes.
    BadChecksum,    ///< CRC-32 of the payload does not match.
    BadPayload,     ///< Checksum fine but the payload fails decode.
};

/** Display name of a frame error ("crc_bad_checksum", ...). */
const char *frameErrorName(FrameError e);

/**
 * unframeDelta with a typed verdict: `*error` reports which check
 * failed (FrameError::None on success) so trace events can carry the
 * cause instead of a bare reject.
 */
std::optional<CommunityDelta> unframeDelta(std::string_view frame,
                                           FrameError *error);

/**
 * Modelled radio payload of one delta sync: the integrity frame plus
 * the result records shipped alongside the adds (the "patch files" of
 * Figure 14).
 */
Bytes deltaWireBytes(const CommunityDelta &delta,
                     const QueryUniverse &universe);

} // namespace pc::core

#endif // PC_CORE_DELTA_H
