#include "core/result_db.h"

#include "util/hash.h"
#include "util/logging.h"
#include <cstdlib>

#include "util/strings.h"

namespace pc::core {

ResultDatabase::ResultDatabase(pc::simfs::FlashStore &store,
                               const DbConfig &cfg, std::string prefix)
    : store_(store), cfg_(cfg), prefix_(std::move(prefix))
{
    pc_assert(cfg_.numFiles >= 1, "database needs at least one file");
    if (cfg_.useStoreEngine) {
        // Slab-engine mode: the engine owns its own file family under
        // the prefix and recovers (or starts fresh) by itself.
        engine_ = std::make_unique<pc::store::StoreEngine>(
            store_, cfg_.engine, prefix_);
        return;
    }
    dataFiles_.reserve(cfg_.numFiles);
    indexFiles_.reserve(cfg_.numFiles);
    const bool attaching = store_.lookup(dataFileName(0)) !=
                           pc::simfs::kNoFile;
    for (u32 f = 0; f < cfg_.numFiles; ++f) {
        if (attaching) {
            // Flash survives power cycles: re-attach to the files and
            // rebuild the in-memory location map from the headers.
            const auto data = store_.lookup(dataFileName(f));
            const auto idx = store_.lookup(indexFileName(f));
            pc_assert(data != pc::simfs::kNoFile &&
                          idx != pc::simfs::kNoFile,
                      "database files missing on attach");
            dataFiles_.push_back(data);
            indexFiles_.push_back(idx);
        } else {
            dataFiles_.push_back(store_.create(dataFileName(f)));
            indexFiles_.push_back(store_.create(indexFileName(f)));
        }
    }
    if (attaching)
        recoverLocations();
}

void
ResultDatabase::recoverLocations()
{
    locations_.clear();
    SimTime sink = 0;
    for (u32 f = 0; f < cfg_.numFiles; ++f) {
        std::string header;
        store_.read(indexFiles_[f], 0, store_.size(indexFiles_[f]),
                    header, sink);
        for (const auto &line : split(header, '\n')) {
            if (line.empty())
                continue;
            const auto parts = split(line, ':');
            pc_assert(parts.size() == 3, "corrupt database header");
            Location loc;
            loc.file = f;
            loc.offset = std::strtoull(parts[1].c_str(), nullptr, 10);
            loc.length = std::strtoull(parts[2].c_str(), nullptr, 10);
            const u64 key = std::strtoull(parts[0].c_str(), nullptr, 16);
            // Later header lines supersede earlier ones: updateRecord
            // appends a fresh line for the key, so last wins.
            locations_[key] = loc;
        }
    }
}

std::string
ResultDatabase::dataFileName(u32 file) const
{
    return strformat("%s_%02u.dat", prefix_.c_str(), file);
}

std::string
ResultDatabase::indexFileName(u32 file) const
{
    return strformat("%s_%02u.idx", prefix_.c_str(), file);
}

std::string
ResultDatabase::encode(const ResultInfo &r)
{
    // Plain-text record, '|'-separated like the paper's portable plain
    // files (Figure 13); padded to the modelled ~500-byte record size so
    // flash accounting matches QueryUniverse::recordSize().
    std::string rec = r.title + "|" + r.description + "|" + r.url + "\n";
    const Bytes target = workload::QueryUniverse::recordSize(r);
    if (rec.size() < target)
        rec.append(target - rec.size(), ' ');
    return rec;
}

bool
ResultDatabase::decode(std::string_view text, ResultRecord &out)
{
    // Strip padding and the trailing newline.
    const auto nl = text.find('\n');
    if (nl == std::string_view::npos)
        return false;
    const std::string_view body = text.substr(0, nl);
    const auto p1 = body.find('|');
    if (p1 == std::string_view::npos)
        return false;
    const auto p2 = body.find('|', p1 + 1);
    if (p2 == std::string_view::npos)
        return false;
    out.title = std::string(body.substr(0, p1));
    out.description = std::string(body.substr(p1 + 1, p2 - p1 - 1));
    out.url = std::string(body.substr(p2 + 1));
    return true;
}

bool
ResultDatabase::addRecord(const ResultInfo &r, SimTime &time)
{
    const u64 key = urlHash(r.url);
    if (engine_) {
        if (engine_->contains(key))
            return false;
        return engine_->put(key, encode(r), time);
    }
    if (locations_.count(key))
        return false;

    const u32 file = fileOf(key);
    const std::string rec = encode(r);

    Location loc;
    loc.file = file;
    loc.offset = store_.size(dataFiles_[file]);
    loc.length = rec.size();

    store_.append(dataFiles_[file], rec, time);
    // Augment the header with this record's (hash, offset, length).
    const std::string idx_line = strformat(
        "%016llx:%llu:%llu\n", (unsigned long long)key,
        (unsigned long long)loc.offset, (unsigned long long)loc.length);
    store_.append(indexFiles_[file], idx_line, time);

    locations_.emplace(key, loc);
    return true;
}

bool
ResultDatabase::updateRecord(const ResultInfo &r, SimTime &time)
{
    const u64 key = urlHash(r.url);
    if (engine_) {
        const bool had = engine_->contains(key);
        engine_->put(key, encode(r), time);
        return had;
    }
    auto it = locations_.find(key);
    if (it == locations_.end()) {
        addRecord(r, time);
        return false;
    }
    // Append-supersede: the old copy stays as dead weight in the data
    // file (flat files cannot reclaim it — exactly the fragmentation
    // the slab engine's GC addresses) and a fresh header line redirects
    // the key.
    const u32 file = fileOf(key);
    const std::string rec = encode(r);

    Location loc;
    loc.file = file;
    loc.offset = store_.size(dataFiles_[file]);
    loc.length = rec.size();

    store_.append(dataFiles_[file], rec, time);
    const std::string idx_line = strformat(
        "%016llx:%llu:%llu\n", (unsigned long long)key,
        (unsigned long long)loc.offset, (unsigned long long)loc.length);
    store_.append(indexFiles_[file], idx_line, time);

    it->second = loc;
    return true;
}

bool
ResultDatabase::contains(u64 url_hash) const
{
    if (engine_)
        return engine_->contains(url_hash);
    return locations_.count(url_hash) != 0;
}

bool
ResultDatabase::fetch(u64 url_hash, ResultRecord &out, SimTime &time) const
{
    if (engine_) {
        // Index probe + (cached) slot read replaces the whole
        // open + parse-the-header sequence of flat mode.
        std::string text;
        if (!engine_->get(url_hash, text, time))
            return false;
        time += cfg_.recordParse;
        const bool ok = decode(text, out);
        pc_assert(ok, "corrupt database record");
        return true;
    }
    const auto it = locations_.find(url_hash);
    if (it == locations_.end())
        return false;
    const Location &loc = it->second;

    // 1. Open the data file (directory/metadata overhead).
    pc::simfs::FileId data = store_.open(dataFileName(loc.file), time);
    pc_assert(data != pc::simfs::kNoFile, "database file vanished");

    // 2. Read and parse the header: every (hash, offset) line of this
    //    file. This is the term that penalizes small file counts — one
    //    big file means one big header per lookup (Figure 12).
    std::string header;
    const Bytes idx_size = store_.size(indexFiles_[loc.file]);
    time += cfg_.perReadOverhead;
    store_.read(indexFiles_[loc.file], 0, idx_size, header, time);
    time += SimTime(header.size()) * cfg_.parsePerByte;

    // 3. Read the record at its offset.
    std::string text;
    time += cfg_.perReadOverhead;
    const Bytes got = store_.read(data, loc.offset, loc.length, text, time);
    pc_assert(got == loc.length, "truncated database record");
    time += cfg_.recordParse;

    const bool ok = decode(text, out);
    pc_assert(ok, "corrupt database record");
    return true;
}

Bytes
ResultDatabase::logicalBytes() const
{
    if (engine_)
        return engine_->logicalBytes();
    Bytes total = 0;
    for (u32 f = 0; f < cfg_.numFiles; ++f)
        total += store_.size(dataFiles_[f]);
    return total;
}

Bytes
ResultDatabase::physicalBytes() const
{
    if (engine_)
        return engine_->physicalBytes();
    Bytes total = 0;
    for (u32 f = 0; f < cfg_.numFiles; ++f) {
        total += store_.physicalSize(dataFiles_[f]);
        total += store_.physicalSize(indexFiles_[f]);
    }
    return total;
}

std::vector<std::string>
ResultDatabase::fileNames() const
{
    if (engine_)
        return engine_->fileNames();
    std::vector<std::string> names;
    for (u32 f = 0; f < cfg_.numFiles; ++f) {
        names.push_back(dataFileName(f));
        names.push_back(indexFileName(f));
    }
    return names;
}

} // namespace pc::core
