/**
 * @file
 * PocketSearch — the search/advertisement pocket cloudlet (Section 5).
 *
 * Combines the community cache (popular query/result pairs pushed from
 * the server's log analysis) with the personalization component (pairs
 * the user accessed, plus click-driven re-ranking) over the DRAM hash
 * table and the flash result database. Operating modes isolate each
 * component for the paper's Figure 17 ablation.
 */

#ifndef PC_CORE_POCKET_SEARCH_H
#define PC_CORE_POCKET_SEARCH_H

#include <optional>
#include <string>
#include <vector>

#include "core/cache_content.h"
#include "core/hash_table.h"
#include "core/result_db.h"
#include "core/suggest.h"
#include "obs/metrics.h"

namespace pc::core {

/** Which cache components are active (Figure 17's three curves). */
enum class CacheMode
{
    Combined,            ///< Community warm start + personalization.
    CommunityOnly,       ///< Static community cache; no learning.
    PersonalizationOnly, ///< Cold start; caches only what the user clicks.
};

/** Display name of a mode. */
std::string cacheModeName(CacheMode m);

/**
 * Where the data index (hash table + suggest index) lives
 * (Section 3.3's tier discussion).
 */
enum class IndexTier
{
    /** Volatile DRAM; the index reloads from NAND at every boot. */
    DramFromNand,
    /** Persistent PCM; instantly available at boot, slower probes. */
    Pcm,
};

/** Display name of a tier. */
std::string indexTierName(IndexTier t);

/** PocketSearch configuration. */
struct PocketSearchConfig
{
    CacheMode mode = CacheMode::Combined;
    /** Ranking decay constant lambda of Equation (2). */
    double lambda = 0.10;
    /** Maintain the Figure-1 auto-suggest prefix index. */
    bool enableSuggest = true;
    /** Index placement (Section 3.3). */
    IndexTier indexTier = IndexTier::DramFromNand;
    /** Hash-table entry layout. */
    HashEntryLayout layout{};
    /** Result database shape. */
    DbConfig db{};
};

/** Outcome of a query lookup. */
struct LookupOutcome
{
    bool hit = false;          ///< Query found in the hash table.
    SimTime hashLookupTime = 0; ///< Table probe latency (~10us).
    SimTime fetchTime = 0;      ///< Flash retrieval latency.
    /** Fetched records, ranked by descending score. */
    std::vector<ResultRecord> results;
    /** Ranked url hashes (parallel to `results`). */
    std::vector<u64> urlHashes;
};

/** Auto-suggest output: completions plus their instant results. */
struct SuggestOutcome
{
    /** One box row: the completed query and its fetched top results. */
    struct Row
    {
        Suggestion suggestion;
        std::vector<ResultRecord> results;
    };

    std::vector<Row> rows;
    SimTime latency = 0; ///< Keystroke probe + flash fetches.
};

/** Cumulative serving statistics. */
struct ServeStats
{
    u64 lookups = 0;
    u64 queryHits = 0;  ///< Query string found.
    u64 pairHits = 0;   ///< Query found AND clicked result cached.
    u64 clicksRecorded = 0;
    u64 pairsLearned = 0;   ///< Pairs added by personalization.
    u64 recordsLearned = 0; ///< DB records added by personalization.
};

/**
 * The on-phone search cache.
 */
class PocketSearch
{
  public:
    /**
     * @param universe Interprets pair ids (strings, URLs, records).
     * @param store Flash file store for the result database.
     * @param cfg Configuration.
     */
    PocketSearch(const QueryUniverse &universe,
                 pc::simfs::FlashStore &store,
                 const PocketSearchConfig &cfg = {});

    /**
     * Install community contents (the overnight push). In
     * PersonalizationOnly mode this is a no-op — that cache starts cold.
     * @param[out] time Accumulates the flash write latency of the push.
     */
    void loadCommunity(const CacheContents &contents, SimTime &time);

    /**
     * Look up a query string; on a hit, fetch up to `max_results`
     * top-ranked records from flash.
     */
    LookupOutcome lookup(const std::string &query_text,
                         u32 max_results = 2);

    /** Lookup by universe pair (replay convenience). */
    LookupOutcome lookupPair(const workload::PairRef &p,
                             u32 max_results = 2);

    /** True if the exact (query, result) pair is cached. */
    bool containsPair(const workload::PairRef &p) const;

    /** True if the query string has any cached results. */
    bool containsQuery(const std::string &query_text) const;

    /**
     * Record a user click-through for a pair: updates ranking
     * (Equations 1/2) and, when personalization is active, caches the
     * pair and its record if new.
     * @param[out] time Accumulates flash write latency for learning.
     */
    void recordClick(const workload::PairRef &p, SimTime &time);

    /**
     * Install one pair directly (community push / update protocol).
     * Inserts into the hash table, ships the record to flash if absent
     * and keeps the auto-suggest index in sync.
     * @param[out] time Accumulates flash write latency.
     * @return True if the database gained a new record.
     */
    bool installPair(const workload::PairRef &p, double score,
                     bool user_accessed, SimTime &time);

    /**
     * Reinstate one index entry from a persisted snapshot (the record
     * bytes are already on flash, so nothing is written).
     */
    void restorePair(const std::string &query, u64 url_hash,
                     double score, bool user_accessed);

    /** Cached state of a pair (score, accessed), or nullopt. */
    std::optional<ResultRef> findPair(const workload::PairRef &p) const;

    /**
     * Remove one pair from the index (delta eviction). The flash
     * record stays — other queries may reference it, and the database
     * is append-mostly anyway. Keeps auto-suggest in sync.
     * @return True if the pair was cached.
     */
    bool evictPair(const workload::PairRef &p);

    /**
     * Overwrite one pair's ranking score (delta rerank / conflict
     * resolution), resyncing the auto-suggest entry to the query's new
     * best score. @return True if the pair was cached.
     */
    bool setPairScore(const workload::PairRef &p, double score);

    /**
     * Figure 1: auto-suggest with instant results. For each of the
     * top `max_suggestions` cached queries completing `prefix`, fetch
     * up to `results_per_suggestion` top-ranked records.
     */
    SuggestOutcome suggestWithResults(std::string_view prefix,
                                      u32 max_suggestions = 3,
                                      u32 results_per_suggestion = 1);

    /** The auto-suggest index (empty when disabled). */
    const SuggestIndex &suggestIndex() const { return suggest_; }

    /**
     * Time from power-on until the index is usable (Section 3.3): a
     * DRAM index must stream in from NAND and deserialize; a PCM index
     * is persistent and instantly available.
     */
    SimTime bootIndexLoadTime() const;

    /** Per-probe penalty of the configured tier over DRAM. */
    SimTime tierProbePenalty() const;

    /** PCM probes cost roughly this much extra per lookup. */
    static constexpr SimTime kPcmProbePenalty = 20 * kMicrosecond;
    /** Index deserialization cost per byte when reloading from NAND. */
    static constexpr SimTime kIndexParsePerByte = 15;

    /** Cached pair count. */
    std::size_t pairs() const { return table_.pairs(); }
    /** Hash-table DRAM footprint. */
    Bytes dramBytes() const { return table_.memoryBytes(); }
    /** Result database logical size. */
    Bytes flashLogicalBytes() const { return db_.logicalBytes(); }
    /** Result database physical (block-rounded) size. */
    Bytes flashPhysicalBytes() const { return db_.physicalBytes(); }

    /** Serving statistics. */
    const ServeStats &stats() const { return stats_; }
    /** Reset serving statistics. */
    void resetStats() { stats_ = ServeStats{}; }

    /**
     * Register serving counters under "core.search.*" (lookups,
     * query_hits, pair_hits, clicks, pairs_learned, records_learned),
     * mirroring ServeStats into the registry. nullptr detaches.
     */
    void attachMetrics(obs::MetricRegistry *reg);

    /** Mutable hash table (cache manager / tests). */
    QueryHashTable &table() { return table_; }
    /** Hash table. */
    const QueryHashTable &table() const { return table_; }
    /** Mutable result database (cache manager / tests). */
    ResultDatabase &db() { return db_; }
    /** Result database. */
    const ResultDatabase &db() const { return db_; }
    /** Universe. */
    const QueryUniverse &universe() const { return universe_; }
    /** Configuration. */
    const PocketSearchConfig &config() const { return cfg_; }

    /** Drop all hash-table contents (cache manager rebuild). */
    void clearTable();

  private:
    /** Cached metric handles (null when no registry is attached). */
    struct Metrics
    {
        obs::Counter *lookups = nullptr;
        obs::Counter *queryHits = nullptr;
        obs::Counter *pairHits = nullptr;
        obs::Counter *clicks = nullptr;
        obs::Counter *pairsLearned = nullptr;
        obs::Counter *recordsLearned = nullptr;
    };

    /**
     * Re-derive a query's auto-suggest score after an evict/rerank.
     * SuggestIndex::insert only ratchets scores upward, so the entry is
     * erased and reinserted at the query's current best table score —
     * exactly the state a fresh install of the same contents produces.
     */
    void resyncSuggest(const std::string &query_text);

    const QueryUniverse &universe_;
    pc::simfs::FlashStore &store_;
    PocketSearchConfig cfg_;
    QueryHashTable table_;
    ResultDatabase db_;
    SuggestIndex suggest_;
    ServeStats stats_;
    Metrics metrics_;
};

} // namespace pc::core

#endif // PC_CORE_POCKET_SEARCH_H
