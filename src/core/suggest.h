/**
 * @file
 * Query auto-suggest with instant results (Figure 1 of the paper).
 *
 * PocketSearch's killer UI trick: because cached results can be
 * retrieved in milliseconds, the phone can show *actual search
 * results* — not just completion strings — inside the auto-suggest box
 * while the user is still typing. This index maps query prefixes to
 * the highest-scored cached queries so each keystroke costs one sorted
 * range scan.
 *
 * The index lives next to the hash table in fast memory and is kept in
 * sync by PocketSearch: community pushes rebuild it, personalization
 * clicks insert into it.
 */

#ifndef PC_CORE_SUGGEST_H
#define PC_CORE_SUGGEST_H

#include <string>
#include <string_view>
#include <vector>

#include "util/types.h"

namespace pc::core {

/** One auto-suggest candidate. */
struct Suggestion
{
    std::string query;  ///< Completed query string.
    double score = 0.0; ///< Best ranking score among its results.
};

/**
 * Prefix index over cached query strings.
 */
class SuggestIndex
{
  public:
    /**
     * Insert a query or raise its score (scores only ratchet up so the
     * box stays stable while the user types and clicks).
     * @return True if the query was new to the index.
     */
    bool insert(const std::string &query, double score);

    /** Remove a query. @return True if it was present. */
    bool erase(const std::string &query);

    /** Drop everything. */
    void clear();

    /**
     * Top-k cached queries starting with `prefix`, best score first.
     * @param[out] time If non-null, accumulates the modelled
     *        per-keystroke latency.
     */
    std::vector<Suggestion> suggest(std::string_view prefix, u32 k,
                                    SimTime *time = nullptr) const;

    /** Number of indexed queries. */
    std::size_t size() const { return entries_.size(); }

    /** Modelled fast-memory footprint (strings + scores). */
    Bytes memoryBytes() const;

    /** Modelled per-keystroke lookup latency (well under a frame). */
    static constexpr SimTime kKeystrokeLatency = 30 * kMicrosecond;

  private:
    struct Entry
    {
        std::string query;
        double score;
    };

    /** Sorted by query string; binary-searchable by prefix. */
    std::vector<Entry> entries_;

    /** Index of the first entry >= query, for insert/lookup. */
    std::size_t lowerBound(std::string_view query) const;
};

} // namespace pc::core

#endif // PC_CORE_SUGGEST_H
