#include "core/cache_content.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"

namespace pc::core {

CacheContentBuilder::CacheContentBuilder(const QueryUniverse &universe,
                                         HashEntryLayout layout)
    : universe_(universe), layout_(layout)
{
    pc_assert(layout_.resultsPerEntry >= 1,
              "hash entries need at least one result slot");
}

void
CacheContentBuilder::scorePairs(std::vector<ScoredPair> &pairs) const
{
    // Score of a (query, result) pair = its volume divided by the total
    // volume of all selected results for the same query (Section 5.1's
    // imdb 0.53 / azlyrics 0.47 example).
    std::unordered_map<u32, u64> query_volume;
    for (const auto &p : pairs)
        query_volume[p.pair.query] += p.volume;
    for (auto &p : pairs) {
        const u64 qv = query_volume[p.pair.query];
        p.score = qv ? double(p.volume) / double(qv) : 0.0;
    }
}

Bytes
CacheContentBuilder::dramFootprint(const std::vector<ScoredPair> &pairs,
                                   HashEntryLayout layout) const
{
    // Entries needed: ceil(results per query / slots per entry), summed
    // over distinct queries (Section 5.2.1's multi-entry chaining).
    std::unordered_map<u32, u32> results_per_query;
    for (const auto &p : pairs)
        ++results_per_query[p.pair.query];
    u64 entries = 0;
    for (const auto &[q, n] : results_per_query) {
        (void)q;
        entries += (n + layout.resultsPerEntry - 1) /
                   layout.resultsPerEntry;
    }
    return entries * layout.entryBytes();
}

CacheContents
CacheContentBuilder::build(const TripletTable &table,
                           const ContentPolicy &policy) const
{
    CacheContents out;
    std::unordered_set<u32> seen_results;
    std::unordered_map<u32, u32> results_per_query;
    Bytes flash = 0;
    u64 entries = 0;
    u64 cumulative = 0;

    const auto &rows = table.rows();
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Triplet &row = rows[i];

        // Tentative footprint if this pair were added.
        Bytes flash_next = flash;
        if (!seen_results.count(row.pair.result)) {
            flash_next += QueryUniverse::recordSize(
                universe_.result(row.pair.result));
        }
        u64 entries_next = entries;
        {
            const u32 n = results_per_query[row.pair.query];
            const u32 before =
                (n + layout_.resultsPerEntry - 1) / layout_.resultsPerEntry;
            const u32 after =
                (n + 1 + layout_.resultsPerEntry - 1) /
                layout_.resultsPerEntry;
            entries_next += after - before;
        }
        const Bytes dram_next = entries_next * layout_.entryBytes();

        // Stopping rules.
        bool stop = false;
        switch (policy.kind) {
          case ThresholdKind::FlashBudget:
            stop = flash_next > policy.flashBudget;
            break;
          case ThresholdKind::DramBudget:
            stop = dram_next > policy.dramBudget;
            break;
          case ThresholdKind::CacheSaturation:
            stop = table.normalizedVolume(i) < policy.saturationVth;
            break;
          case ThresholdKind::VolumeShare:
            stop = table.totalVolume() > 0 &&
                   double(cumulative) / double(table.totalVolume()) >=
                       policy.volumeShare;
            break;
        }
        if (stop)
            break;

        // Commit the pair.
        ScoredPair sp;
        sp.pair = row.pair;
        sp.volume = row.volume;
        out.pairs.push_back(sp);
        seen_results.insert(row.pair.result);
        ++results_per_query[row.pair.query];
        flash = flash_next;
        entries = entries_next;
        cumulative += row.volume;
    }

    scorePairs(out.pairs);
    out.uniqueResults = seen_results.size();
    out.flashBytes = flash;
    out.dramBytes = entries * layout_.entryBytes();
    out.cumulativeShare = table.totalVolume()
        ? double(cumulative) / double(table.totalVolume()) : 0.0;
    return out;
}

void
CacheContentBuilder::footprintOfTop(const TripletTable &table,
                                    std::size_t k, Bytes &dram,
                                    Bytes &flash) const
{
    std::unordered_set<u32> seen_results;
    std::unordered_map<u32, u32> results_per_query;
    flash = 0;
    const auto &rows = table.rows();
    k = std::min(k, rows.size());
    for (std::size_t i = 0; i < k; ++i) {
        const Triplet &row = rows[i];
        if (seen_results.insert(row.pair.result).second) {
            flash += QueryUniverse::recordSize(
                universe_.result(row.pair.result));
        }
        ++results_per_query[row.pair.query];
    }
    u64 entries = 0;
    for (const auto &[q, n] : results_per_query) {
        (void)q;
        entries += (n + layout_.resultsPerEntry - 1) /
                   layout_.resultsPerEntry;
    }
    dram = entries * layout_.entryBytes();
}

} // namespace pc::core
