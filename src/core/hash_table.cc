#include "core/hash_table.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace pc::core {

QueryHashTable::QueryHashTable(HashEntryLayout layout)
    : layout_(layout)
{
    pc_assert(layout_.resultsPerEntry >= 1 && layout_.resultsPerEntry <= 8,
              "resultsPerEntry must be in [1, 8]");
}

const QueryHashTable::Entry *
QueryHashTable::findEntry(std::string_view query, u32 slot) const
{
    const auto it = table_.find(queryHash(query, slot));
    if (it == table_.end())
        return nullptr;
    // Guard against key collisions between different queries: verify the
    // stored query hash matches.
    if (it->second.queryHash != fnv1a(query))
        return nullptr;
    return &it->second;
}

QueryHashTable::Entry *
QueryHashTable::findEntry(std::string_view query, u32 slot)
{
    return const_cast<Entry *>(
        static_cast<const QueryHashTable *>(this)->findEntry(query, slot));
}

std::vector<ResultRef>
QueryHashTable::lookup(std::string_view query, SimTime *time) const
{
    if (time)
        *time += kLookupLatency;
    std::vector<ResultRef> out;
    for (u32 slot = 0; slot < kMaxChain; ++slot) {
        const Entry *e = findEntry(query, slot);
        if (!e)
            break;
        for (u32 i = 0; i < layout_.resultsPerEntry; ++i) {
            if (e->sr[i].urlHash != 0)
                out.push_back(e->sr[i]);
        }
    }
    std::sort(out.begin(), out.end(),
              [](const ResultRef &a, const ResultRef &b) {
                  if (a.score != b.score)
                      return a.score > b.score;
                  return a.urlHash < b.urlHash;
              });
    return out;
}

bool
QueryHashTable::locate(std::string_view query, u64 url_hash, u64 &key,
                       u32 &idx) const
{
    for (u32 slot = 0; slot < kMaxChain; ++slot) {
        const Entry *e = findEntry(query, slot);
        if (!e)
            return false;
        for (u32 i = 0; i < layout_.resultsPerEntry; ++i) {
            if (e->sr[i].urlHash == url_hash) {
                key = queryHash(query, slot);
                idx = i;
                return true;
            }
        }
    }
    return false;
}

bool
QueryHashTable::containsPair(std::string_view query, u64 url_hash) const
{
    u64 key;
    u32 idx;
    return locate(query, url_hash, key, idx);
}

std::optional<ResultRef>
QueryHashTable::findPair(std::string_view query, u64 url_hash) const
{
    u64 key;
    u32 idx;
    if (!locate(query, url_hash, key, idx))
        return std::nullopt;
    return table_.at(key).sr[idx];
}

bool
QueryHashTable::insert(std::string_view query, u64 url_hash, double score,
                       bool user_accessed)
{
    pc_assert(url_hash != 0, "url hash 0 is the empty-slot sentinel");
    if (containsPair(query, url_hash))
        return false;

    // Find the first entry in the chain with a free slot, or append a
    // new entry at the end of the chain.
    for (u32 slot = 0; slot < kMaxChain; ++slot) {
        const u64 key = queryHash(query, slot);
        auto it = table_.find(key);
        if (it == table_.end()) {
            Entry e;
            e.queryHash = fnv1a(query);
            e.sr[0] = ResultRef{url_hash, score, user_accessed};
            table_.emplace(key, e);
            ++pairs_;
            return true;
        }
        if (it->second.queryHash != fnv1a(query)) {
            // A cross-query 64-bit key collision would break chain
            // walking; with mixed FNV hashes this is effectively
            // impossible, so treat it as an internal error.
            pc_panic("query hash key collision");
        }
        for (u32 i = 0; i < layout_.resultsPerEntry; ++i) {
            if (it->second.sr[i].urlHash == 0) {
                it->second.sr[i] =
                    ResultRef{url_hash, score, user_accessed};
                ++pairs_;
                return true;
            }
        }
    }
    pc_panic("hash chain overflow for query '", std::string(query), "'");
}

bool
QueryHashTable::applyClick(std::string_view query, u64 url_hash,
                           double lambda)
{
    // Decay every unclicked sibling of the query: S = S * e^-lambda
    // (Equation 2); raise the clicked pair by 1 (Equation 1).
    const double decay = std::exp(-lambda);
    bool existed = false;
    for (u32 slot = 0; slot < kMaxChain; ++slot) {
        Entry *e = findEntry(query, slot);
        if (!e)
            break;
        for (u32 i = 0; i < layout_.resultsPerEntry; ++i) {
            ResultRef &r = e->sr[i];
            if (r.urlHash == 0)
                continue;
            if (r.urlHash == url_hash) {
                r.score += 1.0;
                r.userAccessed = true;
                existed = true;
            } else {
                r.score *= decay;
            }
        }
    }
    if (!existed) {
        // First click on a previously uncached pair: new entry with the
        // maximum initial score (Section 5.3).
        insert(query, url_hash, 1.0, true);
    }
    return existed;
}

bool
QueryHashTable::setScore(std::string_view query, u64 url_hash, double score)
{
    u64 key;
    u32 idx;
    if (!locate(query, url_hash, key, idx))
        return false;
    table_[key].sr[idx].score = score;
    return true;
}

bool
QueryHashTable::markAccessed(std::string_view query, u64 url_hash)
{
    u64 key;
    u32 idx;
    if (!locate(query, url_hash, key, idx))
        return false;
    table_[key].sr[idx].userAccessed = true;
    return true;
}

bool
QueryHashTable::erasePair(std::string_view query, u64 url_hash)
{
    // Collect the whole chain, drop the pair, then rebuild the chain so
    // slot keys stay contiguous.
    std::vector<ResultRef> all;
    u32 chain_len = 0;
    for (u32 slot = 0; slot < kMaxChain; ++slot) {
        const Entry *e = findEntry(query, slot);
        if (!e)
            break;
        ++chain_len;
        for (u32 i = 0; i < layout_.resultsPerEntry; ++i) {
            if (e->sr[i].urlHash != 0)
                all.push_back(e->sr[i]);
        }
    }
    const auto it = std::find_if(all.begin(), all.end(),
                                 [&](const ResultRef &r) {
                                     return r.urlHash == url_hash;
                                 });
    if (it == all.end())
        return false;
    all.erase(it);

    for (u32 slot = 0; slot < chain_len; ++slot)
        table_.erase(queryHash(query, slot));
    pairs_ -= 1 + all.size();
    for (const auto &r : all)
        insert(query, r.urlHash, r.score, r.userAccessed);
    return true;
}

std::size_t
QueryHashTable::eraseQuery(std::string_view query)
{
    std::size_t removed = 0;
    for (u32 slot = 0; slot < kMaxChain; ++slot) {
        const u64 key = queryHash(query, slot);
        auto it = table_.find(key);
        if (it == table_.end() || it->second.queryHash != fnv1a(query))
            break;
        for (u32 i = 0; i < layout_.resultsPerEntry; ++i) {
            if (it->second.sr[i].urlHash != 0)
                ++removed;
        }
        table_.erase(it);
    }
    pairs_ -= removed;
    return removed;
}

} // namespace pc::core
