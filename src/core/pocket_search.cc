#include "core/pocket_search.h"

#include "util/hash.h"
#include "util/logging.h"

namespace pc::core {

std::string
cacheModeName(CacheMode m)
{
    switch (m) {
      case CacheMode::Combined:
        return "combined";
      case CacheMode::CommunityOnly:
        return "community-only";
      case CacheMode::PersonalizationOnly:
        return "personalization-only";
    }
    return "?";
}

std::string
indexTierName(IndexTier t)
{
    switch (t) {
      case IndexTier::DramFromNand:
        return "dram-from-nand";
      case IndexTier::Pcm:
        return "pcm";
    }
    return "?";
}

PocketSearch::PocketSearch(const QueryUniverse &universe,
                           pc::simfs::FlashStore &store,
                           const PocketSearchConfig &cfg)
    : universe_(universe),
      store_(store),
      cfg_(cfg),
      table_(cfg.layout),
      db_(store, cfg.db)
{
}

SimTime
PocketSearch::tierProbePenalty() const
{
    return cfg_.indexTier == IndexTier::Pcm ? kPcmProbePenalty : 0;
}

SimTime
PocketSearch::bootIndexLoadTime() const
{
    if (cfg_.indexTier == IndexTier::Pcm)
        return 0; // persistent in place (Section 3.3's selling point)
    // Stream the serialized index in from NAND and deserialize it.
    const Bytes index_bytes = dramBytes() + suggest_.memoryBytes();
    if (index_bytes == 0)
        return 0;
    SimTime t = store_.device().read(0, index_bytes);
    t += SimTime(index_bytes) * kIndexParsePerByte;
    return t;
}

void
PocketSearch::loadCommunity(const CacheContents &contents, SimTime &time)
{
    if (cfg_.mode == CacheMode::PersonalizationOnly)
        return;
    for (const auto &sp : contents.pairs)
        installPair(sp.pair, sp.score, /*user_accessed=*/false, time);
}

bool
PocketSearch::installPair(const workload::PairRef &p, double score,
                          bool user_accessed, SimTime &time)
{
    const auto &q = universe_.query(p.query);
    const auto &r = universe_.result(p.result);
    table_.insert(q.text, urlHash(r.url), score, user_accessed);
    if (cfg_.enableSuggest)
        suggest_.insert(q.text, score);
    return db_.addRecord(r, time);
}

void
PocketSearch::restorePair(const std::string &query, u64 url_hash,
                          double score, bool user_accessed)
{
    table_.insert(query, url_hash, score, user_accessed);
    if (cfg_.enableSuggest)
        suggest_.insert(query, score);
}

std::optional<ResultRef>
PocketSearch::findPair(const workload::PairRef &p) const
{
    const auto &q = universe_.query(p.query);
    const auto &r = universe_.result(p.result);
    return table_.findPair(q.text, urlHash(r.url));
}

void
PocketSearch::resyncSuggest(const std::string &query_text)
{
    if (!cfg_.enableSuggest)
        return;
    suggest_.erase(query_text);
    const auto refs = table_.lookup(query_text);
    if (!refs.empty())
        suggest_.insert(query_text, refs.front().score);
}

bool
PocketSearch::evictPair(const workload::PairRef &p)
{
    const auto &q = universe_.query(p.query);
    const auto &r = universe_.result(p.result);
    if (!table_.erasePair(q.text, urlHash(r.url)))
        return false;
    resyncSuggest(q.text);
    return true;
}

bool
PocketSearch::setPairScore(const workload::PairRef &p, double score)
{
    const auto &q = universe_.query(p.query);
    const auto &r = universe_.result(p.result);
    if (!table_.setScore(q.text, urlHash(r.url), score))
        return false;
    resyncSuggest(q.text);
    return true;
}

SuggestOutcome
PocketSearch::suggestWithResults(std::string_view prefix,
                                 u32 max_suggestions,
                                 u32 results_per_suggestion)
{
    SuggestOutcome out;
    const auto suggestions =
        suggest_.suggest(prefix, max_suggestions, &out.latency);
    for (const auto &sug : suggestions) {
        SuggestOutcome::Row row;
        row.suggestion = sug;
        const auto refs = table_.lookup(sug.query, &out.latency);
        const u32 n =
            std::min<u32>(results_per_suggestion, u32(refs.size()));
        for (u32 i = 0; i < n; ++i) {
            ResultRecord rec;
            if (db_.fetch(refs[i].urlHash, rec, out.latency))
                row.results.push_back(std::move(rec));
        }
        out.rows.push_back(std::move(row));
    }
    return out;
}

void
PocketSearch::attachMetrics(obs::MetricRegistry *reg)
{
    if (!reg) {
        metrics_ = Metrics{};
        return;
    }
    metrics_.lookups = &reg->counter("core.search.lookups");
    metrics_.queryHits = &reg->counter("core.search.query_hits");
    metrics_.pairHits = &reg->counter("core.search.pair_hits");
    metrics_.clicks = &reg->counter("core.search.clicks");
    metrics_.pairsLearned = &reg->counter("core.search.pairs_learned");
    metrics_.recordsLearned =
        &reg->counter("core.search.records_learned");
}

LookupOutcome
PocketSearch::lookup(const std::string &query_text, u32 max_results)
{
    LookupOutcome out;
    ++stats_.lookups;
    if (metrics_.lookups)
        metrics_.lookups->bump();
    out.hashLookupTime += tierProbePenalty();
    const auto refs = table_.lookup(query_text, &out.hashLookupTime);
    if (refs.empty())
        return out;
    out.hit = true;
    ++stats_.queryHits;
    if (metrics_.queryHits)
        metrics_.queryHits->bump();
    const u32 n = std::min<u32>(max_results, u32(refs.size()));
    for (u32 i = 0; i < n; ++i) {
        ResultRecord rec;
        if (db_.fetch(refs[i].urlHash, rec, out.fetchTime)) {
            out.results.push_back(std::move(rec));
            out.urlHashes.push_back(refs[i].urlHash);
        }
    }
    return out;
}

LookupOutcome
PocketSearch::lookupPair(const workload::PairRef &p, u32 max_results)
{
    const auto &q = universe_.query(p.query);
    LookupOutcome out = lookup(q.text, max_results);
    if (out.hit && containsPair(p)) {
        ++stats_.pairHits;
        if (metrics_.pairHits)
            metrics_.pairHits->bump();
    }
    return out;
}

bool
PocketSearch::containsPair(const workload::PairRef &p) const
{
    const auto &q = universe_.query(p.query);
    const auto &r = universe_.result(p.result);
    return table_.containsPair(q.text, urlHash(r.url));
}

bool
PocketSearch::containsQuery(const std::string &query_text) const
{
    return !table_.lookup(query_text).empty();
}

void
PocketSearch::recordClick(const workload::PairRef &p, SimTime &time)
{
    ++stats_.clicksRecorded;
    if (metrics_.clicks)
        metrics_.clicks->bump();
    const auto &q = universe_.query(p.query);
    const auto &r = universe_.result(p.result);
    const u64 uh = urlHash(r.url);

    if (cfg_.mode == CacheMode::CommunityOnly) {
        // Static cache: no learning, no re-ranking state accumulates.
        return;
    }

    const bool existed = table_.applyClick(q.text, uh, cfg_.lambda);
    if (!existed) {
        ++stats_.pairsLearned;
        if (metrics_.pairsLearned)
            metrics_.pairsLearned->bump();
    }
    if (cfg_.enableSuggest) {
        // Keep the box in sync: the clicked query's best score rose.
        const auto refs = table_.lookup(q.text);
        if (!refs.empty())
            suggest_.insert(q.text, refs.front().score);
    }
    if (db_.addRecord(r, time)) {
        ++stats_.recordsLearned;
        if (metrics_.recordsLearned)
            metrics_.recordsLearned->bump();
    }
}

void
PocketSearch::clearTable()
{
    table_.clear();
    suggest_.clear();
}

} // namespace pc::core
