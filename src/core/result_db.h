/**
 * @file
 * The custom flash database of search results (Figure 13 of the paper).
 *
 * Search results are stored once each (never per query — Section 5.2.1
 * found only 60% of cached results are unique, so per-query storage
 * would waste ~40%) in a small fixed set of plain files. A result lives
 * in file (urlHash mod numFiles); each file carries a header of
 * (hash, offset) pairs ahead of the record payloads. Retrieval opens the
 * file, parses the header, and reads the record at its offset.
 *
 * The file count trades retrieval time against flash fragmentation
 * (Figure 12): one file means a huge header to parse per lookup; many
 * files mean block-rounding waste. The paper lands on 32.
 */

#ifndef PC_CORE_RESULT_DB_H
#define PC_CORE_RESULT_DB_H

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "simfs/flash_store.h"
#include "store/engine.h"
#include "workload/universe.h"

namespace pc::core {

using workload::ResultInfo;

/** A materialized search-result record (what the browser renders). */
struct ResultRecord
{
    std::string title;       ///< Hyperlink text.
    std::string description; ///< Landing-page snippet.
    std::string url;         ///< Human-readable address.
};

/** Database shape and host-software timing. */
struct DbConfig
{
    u32 numFiles = 32;          ///< Paper's sweet spot (Figure 12).
    /** Per-read OS/file-system overhead (syscall, FAT translation). */
    SimTime perReadOverhead = 1200 * kMicrosecond;
    /** Header text parse cost per byte (2010-era phone CPU). */
    SimTime parsePerByte = 100;
    /** Fixed record deserialization cost. */
    SimTime recordParse = 100 * kMicrosecond;
    /**
     * Opt-in: back the database with the pc::store slab engine instead
     * of the paper's flat files. Lookups then pay an in-memory index
     * probe plus a (possibly cached) slot read instead of the
     * open + parse-the-whole-header sequence. Off by default so every
     * committed baseline keeps the paper's storage model.
     */
    bool useStoreEngine = false;
    /** Engine shape when useStoreEngine is set. */
    pc::store::StoreEngineConfig engine{};
};

/**
 * The on-flash search result database.
 */
class ResultDatabase
{
  public:
    /**
     * @param store Flash file store backing the database files. Must
     *        outlive the database. If the store already holds this
     *        prefix's files (flash survives power cycles), the database
     *        re-attaches to them and rebuilds its location map from the
     *        on-flash headers; otherwise fresh files are created.
     * @param cfg Shape/timing configuration.
     * @param prefix File name prefix (several cloudlets can share a
     *        store with distinct prefixes).
     */
    ResultDatabase(pc::simfs::FlashStore &store, const DbConfig &cfg = {},
                   std::string prefix = "psearch");

    /**
     * Add a record keyed by urlHash(r.url); no-op if present.
     * @param[out] time Accumulates flash append latency.
     * @return True if newly added.
     */
    bool addRecord(const ResultInfo &r, SimTime &time);

    /**
     * Overwrite the record keyed by urlHash(r.url) (server refreshed a
     * cached result). Falls back to addRecord when absent. Flat mode
     * appends the new copy and a superseding header line (last wins on
     * recovery); engine mode is a native out-of-place update.
     * @param[out] time Accumulates flash latency.
     * @return True if the record replaced an existing one.
     */
    bool updateRecord(const ResultInfo &r, SimTime &time);

    /** True if a record with this key exists. */
    bool contains(u64 url_hash) const;

    /**
     * Retrieve a record by key, modelling the full open + header parse +
     * record read sequence.
     * @param[out] out The record, when found.
     * @param[out] time Accumulates the retrieval latency.
     * @return True if found.
     */
    bool fetch(u64 url_hash, ResultRecord &out, SimTime &time) const;

    /** Number of stored records. */
    std::size_t records() const
    {
        return engine_ ? std::size_t(engine_->items()) : locations_.size();
    }

    /** Sum of record payload bytes (headers excluded). */
    Bytes logicalBytes() const;

    /** Block-rounded bytes occupied by all database files. */
    Bytes physicalBytes() const;

    /** Database file index a key maps to. */
    u32 fileOf(u64 url_hash) const { return u32(url_hash % cfg_.numFiles); }

    /** Configuration. */
    const DbConfig &config() const { return cfg_; }

    /** Names of all database files. */
    std::vector<std::string> fileNames() const;

    /** The slab engine, or nullptr in flat-file mode. */
    pc::store::StoreEngine *engine() { return engine_.get(); }
    const pc::store::StoreEngine *engine() const { return engine_.get(); }

  private:
    struct Location
    {
        u32 file;    ///< Database file index.
        Bytes offset; ///< Record offset within the data region.
        Bytes length; ///< Record length in bytes.
    };

    std::string dataFileName(u32 file) const;
    std::string indexFileName(u32 file) const;

    /** Rebuild locations_ from the on-flash headers (attach path). */
    void recoverLocations();

    /** Serialize a record. */
    static std::string encode(const ResultInfo &r);
    /** Deserialize a record. */
    static bool decode(std::string_view text, ResultRecord &out);

    pc::simfs::FlashStore &store_;
    DbConfig cfg_;
    std::string prefix_;
    std::vector<pc::simfs::FileId> dataFiles_;
    std::vector<pc::simfs::FileId> indexFiles_;
    std::unordered_map<u64, Location> locations_;
    std::unique_ptr<pc::store::StoreEngine> engine_;
};

} // namespace pc::core

#endif // PC_CORE_RESULT_DB_H
