#include "core/persistence.h"

#include <cstring>

#include "util/logging.h"

namespace pc::core {

namespace {

constexpr char kMagic[4] = {'P', 'C', 'I', 'X'};

template <typename T>
void
put(std::string &out, T v)
{
    char buf[sizeof(T)];
    std::memcpy(buf, &v, sizeof(T));
    out.append(buf, sizeof(T));
}

template <typename T>
bool
get(std::string_view blob, std::size_t &pos, T &v)
{
    if (pos + sizeof(T) > blob.size())
        return false;
    std::memcpy(&v, blob.data() + pos, sizeof(T));
    pos += sizeof(T);
    return true;
}

} // namespace

Bytes
persistIndex(PocketSearch &ps, pc::simfs::FlashStore &store,
             const std::string &file_name, SimTime &time)
{
    // The hash table stores only hashes; the suggest index holds the
    // query strings, so it enumerates the cached queries for us. (With
    // suggestions disabled there are no strings to persist — keep the
    // feature on if snapshots are wanted.)
    const auto suggestions = ps.suggestIndex().suggest("", ~u32(0));

    std::string blob;
    blob.append(kMagic, 4);
    put<u32>(blob, 0); // patched below

    u32 pairs = 0;
    for (const auto &sug : suggestions) {
        const auto refs = ps.table().lookup(sug.query);
        for (const auto &r : refs) {
            pc_assert(sug.query.size() < 0x10000, "query too long");
            put<u16>(blob, u16(sug.query.size()));
            blob.append(sug.query);
            put<u64>(blob, r.urlHash);
            put<double>(blob, r.score);
            put<u8>(blob, r.userAccessed ? 1 : 0);
            ++pairs;
        }
    }
    std::memcpy(blob.data() + 4, &pairs, sizeof(u32));

    pc::simfs::FileId f = store.lookup(file_name);
    if (f == pc::simfs::kNoFile) {
        f = store.create(file_name);
        store.append(f, blob, time);
    } else {
        store.truncateAndWrite(f, blob, time);
    }
    return blob.size();
}

RestoreResult
restoreIndex(PocketSearch &ps, pc::simfs::FlashStore &store,
             const std::string &file_name)
{
    RestoreResult res;
    const pc::simfs::FileId f = store.lookup(file_name);
    if (f == pc::simfs::kNoFile)
        return res;

    std::string blob;
    store.read(f, 0, store.size(f), blob, res.loadTime);
    res.loadTime +=
        SimTime(blob.size()) * PocketSearch::kIndexParsePerByte;

    if (blob.size() < 8 || std::memcmp(blob.data(), kMagic, 4) != 0)
        return res;
    std::size_t pos = 4;
    u32 count = 0;
    if (!get(blob, pos, count))
        return res;

    for (u32 i = 0; i < count; ++i) {
        u16 qlen = 0;
        if (!get(blob, pos, qlen))
            return res;
        if (pos + qlen > blob.size())
            return res;
        const std::string query(blob.substr(pos, qlen));
        pos += qlen;
        u64 url = 0;
        double score = 0;
        u8 accessed = 0;
        if (!get(blob, pos, url) || !get(blob, pos, score) ||
            !get(blob, pos, accessed))
            return res;
        ps.restorePair(query, url, score, accessed != 0);
        ++res.pairs;
    }
    res.ok = true;
    return res;
}

} // namespace pc::core
