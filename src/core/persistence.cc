#include "core/persistence.h"

#include <cstring>
#include <vector>

#include "util/crc32.h"
#include "util/logging.h"

namespace pc::core {

namespace {

constexpr char kLegacyMagic[4] = {'P', 'C', 'I', 'X'};
constexpr char kMagic[4] = {'P', 'C', 'S', '2'};
constexpr u32 kFormatVersion = 2;
/** magic + version + sequence + pair count. */
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 4;

template <typename T>
void
put(std::string &out, T v)
{
    char buf[sizeof(T)];
    std::memcpy(buf, &v, sizeof(T));
    out.append(buf, sizeof(T));
}

template <typename T>
bool
get(std::string_view blob, std::size_t &pos, T &v)
{
    if (pos + sizeof(T) > blob.size())
        return false;
    std::memcpy(&v, blob.data() + pos, sizeof(T));
    pos += sizeof(T);
    return true;
}

/** One deserialized index entry, staged before any state is applied. */
struct ParsedPair
{
    std::string query;
    u64 urlHash = 0;
    double score = 0.0;
    bool accessed = false;
};

/** Fully parsed, checksum-valid snapshot slot. */
struct ParsedSlot
{
    bool valid = false;
    u64 sequence = 0;
    std::vector<ParsedPair> pairs;
};

std::string
slotName(const std::string &file_name, int slot)
{
    return file_name + (slot == 0 ? ".s0" : ".s1");
}

/** Parse the shared pair-list section; true iff exactly `count` pairs
 *  fit in blob[pos, end). */
bool
parsePairs(std::string_view blob, std::size_t pos, std::size_t end,
           u32 count, std::vector<ParsedPair> &out)
{
    out.clear();
    out.reserve(count);
    for (u32 i = 0; i < count; ++i) {
        u16 qlen = 0;
        if (!get(blob, pos, qlen))
            return false;
        if (pos + qlen > end)
            return false;
        ParsedPair p;
        p.query.assign(blob.substr(pos, qlen));
        pos += qlen;
        u8 accessed = 0;
        if (!get(blob, pos, p.urlHash) || !get(blob, pos, p.score) ||
            !get(blob, pos, accessed))
            return false;
        if (pos > end)
            return false;
        p.accessed = accessed != 0;
        out.push_back(std::move(p));
    }
    return pos == end;
}

/** Validate + parse one slot blob. Never throws, never partial. */
ParsedSlot
parseSlot(std::string_view blob)
{
    ParsedSlot slot;
    if (blob.size() < kHeaderBytes + sizeof(u32))
        return slot;
    if (std::memcmp(blob.data(), kMagic, 4) != 0)
        return slot;
    const std::size_t body = blob.size() - sizeof(u32);
    u32 stored_crc = 0;
    std::memcpy(&stored_crc, blob.data() + body, sizeof(u32));
    if (crc32(blob.substr(0, body)) != stored_crc)
        return slot; // torn write or bit rot
    std::size_t pos = 4;
    u32 version = 0;
    u32 count = 0;
    if (!get(blob, pos, version) || version != kFormatVersion)
        return slot;
    if (!get(blob, pos, slot.sequence) || !get(blob, pos, count))
        return slot;
    slot.valid = parsePairs(blob, pos, body, count, slot.pairs);
    return slot;
}

/** Read + parse one slot file; absent files parse as invalid. */
ParsedSlot
loadSlot(pc::simfs::FlashStore &store, const std::string &name,
         SimTime &time)
{
    ParsedSlot slot;
    const pc::simfs::FileId f = store.lookup(name);
    if (f == pc::simfs::kNoFile)
        return slot;
    std::string blob;
    store.read(f, 0, store.size(f), blob, time);
    return parseSlot(blob);
}

/** Serialize the index of `ps` with the given sequence number. */
std::string
buildSlotBlob(PocketSearch &ps, u64 sequence)
{
    // The hash table stores only hashes; the suggest index holds the
    // query strings, so it enumerates the cached queries for us. (With
    // suggestions disabled there are no strings to persist — keep the
    // feature on if snapshots are wanted.)
    const auto suggestions = ps.suggestIndex().suggest("", ~u32(0));

    std::string blob;
    blob.append(kMagic, 4);
    put<u32>(blob, kFormatVersion);
    put<u64>(blob, sequence);
    put<u32>(blob, 0); // pair count, patched below

    u32 pairs = 0;
    for (const auto &sug : suggestions) {
        const auto refs = ps.table().lookup(sug.query);
        for (const auto &r : refs) {
            pc_assert(sug.query.size() < 0x10000, "query too long");
            put<u16>(blob, u16(sug.query.size()));
            blob.append(sug.query);
            put<u64>(blob, r.urlHash);
            put<double>(blob, r.score);
            put<u8>(blob, r.userAccessed ? 1 : 0);
            ++pairs;
        }
    }
    std::memcpy(blob.data() + kHeaderBytes - sizeof(u32), &pairs,
                sizeof(u32));
    put<u32>(blob, crc32(blob));
    return blob;
}

} // namespace

PersistResult
persistIndex(PocketSearch &ps, pc::simfs::FlashStore &store,
             const std::string &file_name, SimTime &time)
{
    PersistResult res;

    // Which slot holds the newest valid snapshot? Write the other one,
    // so the good snapshot survives a crash at any byte of this commit.
    const ParsedSlot s0 = loadSlot(store, slotName(file_name, 0), time);
    const ParsedSlot s1 = loadSlot(store, slotName(file_name, 1), time);
    int target = 0;
    u64 last_seq = 0;
    if (s0.valid && (!s1.valid || s0.sequence >= s1.sequence)) {
        target = 1;
        last_seq = s0.sequence;
    } else if (s1.valid) {
        target = 0;
        last_seq = s1.sequence;
    }
    res.sequence = last_seq + 1;
    res.slot = slotName(file_name, target);

    const std::string blob = buildSlotBlob(ps, res.sequence);

    pc::simfs::FileId f = store.lookup(res.slot);
    if (f == pc::simfs::kNoFile) {
        f = store.create(res.slot);
        store.append(f, blob, time);
    } else {
        store.truncateAndWrite(f, blob, time);
    }

    // Verify: read the slot back and re-validate before declaring the
    // commit durable. A crash or bit flip shows up right here.
    std::string check;
    store.read(f, 0, store.size(f), check, time);
    if (check.size() != blob.size()) {
        return res; // torn: the other slot still holds the good state
    }
    const ParsedSlot written = parseSlot(check);
    if (!written.valid || written.sequence != res.sequence)
        return res;

    res.ok = true;
    res.bytes = blob.size();
    return res;
}

namespace {

/** Legacy single-file PCIX reader (no checksum; best effort). */
RestoreResult
restoreLegacy(PocketSearch &ps, pc::simfs::FlashStore &store,
              const std::string &file_name)
{
    RestoreResult res;
    const pc::simfs::FileId f = store.lookup(file_name);
    if (f == pc::simfs::kNoFile)
        return res;

    std::string blob;
    store.read(f, 0, store.size(f), blob, res.loadTime);
    res.loadTime +=
        SimTime(blob.size()) * PocketSearch::kIndexParsePerByte;

    if (blob.size() < 8 || std::memcmp(blob.data(), kLegacyMagic, 4) != 0)
        return res;
    std::size_t pos = 4;
    u32 count = 0;
    if (!get(blob, pos, count))
        return res;

    // Stage everything first: a truncated legacy snapshot must not
    // leak partial state into the cache.
    std::vector<ParsedPair> pairs;
    if (!parsePairs(blob, pos, blob.size(), count, pairs))
        return res;

    for (const auto &p : pairs)
        ps.restorePair(p.query, p.urlHash, p.score, p.accessed);
    res.pairs = pairs.size();
    res.ok = true;
    res.legacyFormat = true;
    return res;
}

} // namespace

RestoreResult
restoreIndex(PocketSearch &ps, pc::simfs::FlashStore &store,
             const std::string &file_name)
{
    RestoreResult res;

    ParsedSlot slots[2];
    bool present[2] = {false, false};
    for (int i = 0; i < 2; ++i) {
        const std::string name = slotName(file_name, i);
        const pc::simfs::FileId f = store.lookup(name);
        if (f == pc::simfs::kNoFile)
            continue;
        present[i] = true;
        std::string blob;
        store.read(f, 0, store.size(f), blob, res.loadTime);
        res.loadTime +=
            SimTime(blob.size()) * PocketSearch::kIndexParsePerByte;
        slots[i] = parseSlot(blob);
        if (!slots[i].valid)
            ++res.corruptSlots;
    }

    int best = -1;
    for (int i = 0; i < 2; ++i) {
        if (slots[i].valid &&
            (best < 0 || slots[i].sequence > slots[best].sequence))
            best = i;
    }

    if (best < 0) {
        // No valid slot. If no slot file even exists, the snapshot may
        // predate the checksummed format — try the legacy reader.
        if (!present[0] && !present[1]) {
            RestoreResult legacy = restoreLegacy(ps, store, file_name);
            legacy.loadTime += res.loadTime;
            return legacy;
        }
        return res;
    }

    for (const auto &p : slots[best].pairs)
        ps.restorePair(p.query, p.urlHash, p.score, p.accessed);
    res.ok = true;
    res.pairs = slots[best].pairs.size();
    res.sequence = slots[best].sequence;
    res.usedFallback = res.corruptSlots > 0;
    return res;
}

} // namespace pc::core
