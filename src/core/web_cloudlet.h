/**
 * @file
 * PocketWeb — the web-content pocket cloudlet (footnote 2 and
 * Section 3.2 of the paper).
 *
 * Caches full landing pages so browsing, not just searching, is served
 * from flash. The paper's data-management policy drives the design:
 *
 *  - *Static* content is refreshed in bulk only while charging on
 *    cheap links (the overnight push).
 *  - *Dynamic* content (news, stock prices) goes stale quickly, and
 *    bulk-refreshing it over the radio is infeasible — but "70% of web
 *    visits tend to be revisits to less than a couple of tens of web
 *    pages for more than 50% of the users", so only the user's
 *    most-revisited dynamic pages are refreshed in real time over the
 *    radio, at a tiny bandwidth cost.
 *
 * A visit hits when the page is cached *and fresh*: static pages are
 * always fresh enough; dynamic pages must be inside the real-time
 * refresh set or refreshed since their last change.
 */

#ifndef PC_CORE_WEB_CLOUDLET_H
#define PC_CORE_WEB_CLOUDLET_H

#include <string>
#include <unordered_map>
#include <vector>

#include "core/cloudlet.h"
#include "simfs/flash_store.h"
#include "util/types.h"

namespace pc::core {

/** Web cloudlet configuration. */
struct WebCloudletConfig
{
    /** Full page size (Table 2: ~1.5 MB for www.cnn.com). */
    Bytes pageSize = Bytes(1.5 * double(kMiB));
    /** Average update payload when refreshing a dynamic page. */
    Bytes refreshPayload = 64 * kKiB;
    /** How many most-revisited dynamic pages refresh in real time. */
    u32 realtimeSetSize = 20;
    /** How often dynamic content changes (staleness horizon). */
    SimTime dynamicChangePeriod = 6ll * 3600 * kSecond;
    /** Flash page fetch latency (sequential read of a cached page). */
    SimTime fetchLatency = 120 * kMillisecond;
    /** Per-entry index bytes. */
    Bytes indexEntryBytes = 48;
};

/** Per-page cache state. */
struct CachedPage
{
    bool dynamic = false;     ///< Changes frequently (news, prices).
    u64 visits = 0;           ///< Revisit counter (drives the RT set).
    SimTime lastRefresh = 0;  ///< When content was last fetched/pushed.
    bool inRealtimeSet = false;
};

/** Serving statistics split the paper's way. */
struct WebServeStats
{
    u64 visits = 0;
    u64 hitsFresh = 0;      ///< Cached and fresh: served from flash.
    u64 missUncached = 0;   ///< Page not cached at all.
    u64 missStale = 0;      ///< Cached but stale dynamic content.
    Bytes realtimeBytes = 0; ///< Radio bytes spent on RT refreshes.
};

/**
 * URL-keyed full-page cache with the Section 3.2 freshness policy.
 */
class WebContentCloudlet : public Cloudlet
{
  public:
    /** @param store Flash store for page payloads; must outlive this. */
    explicit WebContentCloudlet(pc::simfs::FlashStore &store,
                                const WebCloudletConfig &cfg = {});

    std::string name() const override { return "web"; }
    Bytes indexBytes() const override;
    Bytes dataBytes() const override;
    u64 lookups() const override { return stats_.visits; }
    u64 hits() const override { return stats_.hitsFresh; }
    Bytes shrinkTo(Bytes data_budget) override;

    /**
     * Install a page (overnight push or caching after a visit).
     * @param[out] time Accumulates flash write latency.
     */
    void installPage(const std::string &url, bool dynamic, SimTime now,
                     SimTime &time);

    /**
     * Serve a visit at simulated time `now`.
     * @param[out] time Accumulates flash fetch latency on a hit.
     * @return True when served locally (cached and fresh).
     */
    bool visit(const std::string &url, SimTime now, SimTime &time);

    /**
     * Background tick: real-time refresh of the top revisited dynamic
     * pages (call periodically, e.g. every simulated hour). Accounts
     * the radio bytes it costs.
     */
    void realtimeRefresh(SimTime now);

    /**
     * Radio bytes a *bulk* refresh of all cached dynamic pages would
     * cost — the infeasible alternative the paper rules out.
     */
    Bytes bulkRefreshBytes() const;

    /** Recompute the real-time set from revisit counts (nightly). */
    void recomputeRealtimeSet();

    /** Cached page count. */
    std::size_t pages() const { return pages_.size(); }

    /** Per-policy statistics. */
    const WebServeStats &stats() const { return stats_; }

    /** State of one page (testing/diagnostics). */
    const CachedPage *find(const std::string &url) const;

  private:
    bool isFresh(const CachedPage &p, SimTime now) const;

    pc::simfs::FlashStore &store_;
    WebCloudletConfig cfg_;
    pc::simfs::FileId file_;
    std::unordered_map<std::string, CachedPage> pages_;
    WebServeStats stats_;
};

} // namespace pc::core

#endif // PC_CORE_WEB_CLOUDLET_H
