#include "core/ad_cloudlet.h"

#include "util/logging.h"

namespace pc::core {

AdCloudlet::AdCloudlet(pc::simfs::FlashStore &store,
                       const AdCloudletConfig &cfg)
    : store_(store), cfg_(cfg), file_(store.create("ads.dat"))
{
    pc_assert(cfg_.bannerSize > 0, "banner size must be positive");
}

Bytes
AdCloudlet::indexBytes() const
{
    return Bytes(ads_.size()) * cfg_.indexEntryBytes;
}

Bytes
AdCloudlet::dataBytes() const
{
    return Bytes(ads_.size()) * cfg_.bannerSize;
}

void
AdCloudlet::rewriteFile(SimTime &time)
{
    const std::string blob(std::size_t(dataBytes()), '\0');
    store_.truncateAndWrite(file_, blob, time);
}

void
AdCloudlet::installAd(const std::string &query, const AdRecord &ad,
                      SimTime &time)
{
    const bool grew = !ads_.count(query);
    ads_[query] = ad;
    if (grew) {
        // Append one banner's worth of payload.
        store_.append(file_, std::string(std::size_t(cfg_.bannerSize),
                                         '\0'),
                      time);
    }
}

bool
AdCloudlet::containsQuery(const std::string &query) const
{
    return ads_.count(query) != 0;
}

bool
AdCloudlet::serve(const std::string &query, AdRecord &ad, SimTime &time)
{
    ++lookups_;
    const auto it = ads_.find(query);
    if (it == ads_.end())
        return false;
    ++hits_;
    ad = it->second;
    time += cfg_.fetchLatency;
    return true;
}

bool
AdCloudlet::evictQuery(const std::string &query)
{
    if (ads_.erase(query) == 0)
        return false;
    SimTime t = 0;
    rewriteFile(t);
    return true;
}

Bytes
AdCloudlet::shrinkTo(Bytes data_budget)
{
    const u64 keep = data_budget / cfg_.bannerSize;
    if (keep >= ads_.size())
        return 0;
    const Bytes before = dataBytes();
    // Without per-ad value information, drop arbitrary entries beyond
    // the budget (the coordinator prefers evictQuery for targeted
    // eviction).
    while (ads_.size() > keep)
        ads_.erase(ads_.begin());
    SimTime t = 0;
    rewriteFile(t);
    return before - dataBytes();
}

} // namespace pc::core
