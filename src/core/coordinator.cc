#include "core/coordinator.h"

namespace pc::core {

ServedPage
CloudletCoordinator::serveQuery(const std::string &query, u32 max_results)
{
    ServedPage page;
    ++stats_.pagesServed;

    page.search = search_.lookup(query, max_results);
    page.latency = page.search.hashLookupTime + page.search.fetchTime;

    if (!page.search.hit) {
        // Search miss: the query goes to the cloud, whose response
        // carries its own ads — probing the local ad cache would only
        // burn time and index bandwidth (Section 7).
        ++stats_.adProbesSkipped;
        return page;
    }
    ++stats_.searchHits;

    AdRecord ad;
    SimTime ad_time = 0;
    if (ads_.serve(query, ad, ad_time)) {
        ++stats_.adHits;
        page.adShown = true;
        page.ad = std::move(ad);
        page.latency += ad_time;
    }
    return page;
}

std::size_t
CloudletCoordinator::evictQueries(const std::vector<std::string> &queries)
{
    std::size_t ads_evicted = 0;
    for (const auto &q : queries) {
        search_.table().eraseQuery(q);
        if (ads_.evictQuery(q))
            ++ads_evicted;
    }
    stats_.adsEvictedWithQueries += ads_evicted;
    return ads_evicted;
}

} // namespace pc::core
