#include "core/delta.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "util/crc32.h"
#include "util/hash.h"
#include "util/logging.h"

namespace pc::core {

namespace {

constexpr char kPayloadMagic[4] = {'P', 'C', 'D', '1'};
constexpr char kFrameMagic[4] = {'P', 'C', 'F', '1'};
/** magic + fromVersion + toVersion + three op counts. */
constexpr std::size_t kHeaderBytes = 4 + 8 + 8 + 4 * 3;
/** Add/re-rank record: pair ids + score bits + volume. */
constexpr std::size_t kScoredBytes = 4 + 4 + 8 + 8;
/** Evict record: pair ids only. */
constexpr std::size_t kEvictBytes = 4 + 4;

template <typename T>
void
put(std::string &out, T v)
{
    char buf[sizeof(T)];
    std::memcpy(buf, &v, sizeof(T));
    out.append(buf, sizeof(T));
}

template <typename T>
T
get(const char *p)
{
    T v;
    std::memcpy(&v, p, sizeof(T));
    return v;
}

/** Dense key of a universe pair (query and result ids are u32). */
u64
pairKey(const workload::PairRef &p)
{
    return (u64(p.query) << 32) | u64(p.result);
}

/** Server-side match key of a table pair (same as cache_manager). */
u64
matchKey(u64 query_fnv, u64 url_hash)
{
    return hashCombine(query_fnv, url_hash);
}

bool
pairInRange(const workload::PairRef &p, const QueryUniverse &u)
{
    return p.query < u.numQueries() && p.result < u.numResults();
}

/**
 * Install one add, merging with an already-cached pair by maximum
 * score (the user's personalization got there first).
 */
void
commitAdd(PocketSearch &ps, const ScoredPair &sp, SimTime &time,
          DeltaApplyStats &stats)
{
    const auto existing = ps.findPair(sp.pair);
    if (existing.has_value()) {
        ++stats.conflicts;
        if (sp.score > existing->score)
            ps.setPairScore(sp.pair, sp.score);
        return;
    }
    ++stats.added;
    if (ps.installPair(sp.pair, sp.score, false, time))
        ++stats.recordsPatched;
}

} // namespace

const char *
deltaApplyErrorName(DeltaApplyError e)
{
    switch (e) {
    case DeltaApplyError::None:
        return "none";
    case DeltaApplyError::BadPairId:
        return "bad_pair_id";
    case DeltaApplyError::MissingEvictTarget:
        return "missing_evict_target";
    case DeltaApplyError::MissingRerankTarget:
        return "missing_rerank_target";
    }
    return "unknown";
}

CommunityDelta
diffContents(const CacheContents &from, const CacheContents &to,
             u64 from_version, u64 to_version)
{
    CommunityDelta d;
    d.fromVersion = from_version;
    d.toVersion = to_version;

    std::unordered_map<u64, const ScoredPair *> base;
    base.reserve(from.pairs.size());
    for (const auto &sp : from.pairs)
        base.emplace(pairKey(sp.pair), &sp);

    std::unordered_set<u64> target;
    target.reserve(to.pairs.size());
    for (const auto &sp : to.pairs) {
        target.insert(pairKey(sp.pair));
        const auto it = base.find(pairKey(sp.pair));
        if (it == base.end())
            d.adds.push_back(sp);
        else if (it->second->score != sp.score)
            d.reranks.push_back(sp);
    }
    for (const auto &sp : from.pairs) {
        if (!target.count(pairKey(sp.pair)))
            d.evicts.push_back(sp.pair);
    }
    return d;
}

DeltaApplyResult
tryApplyCommunityDelta(PocketSearch &ps, const CommunityDelta &delta,
                       SimTime &time)
{
    DeltaApplyResult res;
    const QueryUniverse &u = ps.universe();
    const bool fullInstall = delta.fromVersion == 0;

    // Validate: every pair id must be interpretable and every
    // evict/re-rank target must resolve in the live table. Nothing is
    // mutated until the whole delta checks out.
    for (const auto &sp : delta.adds) {
        if (!pairInRange(sp.pair, u)) {
            res.error = DeltaApplyError::BadPairId;
            return res;
        }
    }
    for (const auto &p : delta.evicts) {
        if (!pairInRange(p, u)) {
            res.error = DeltaApplyError::BadPairId;
            return res;
        }
        if (!ps.findPair(p).has_value()) {
            res.error = DeltaApplyError::MissingEvictTarget;
            return res;
        }
    }
    for (const auto &sp : delta.reranks) {
        if (!pairInRange(sp.pair, u)) {
            res.error = DeltaApplyError::BadPairId;
            return res;
        }
        if (!ps.findPair(sp.pair).has_value()) {
            res.error = DeltaApplyError::MissingRerankTarget;
            return res;
        }
    }

    // Commit. Every operation below was proven to resolve, so the
    // sequence cannot fail part-way for state reasons.
    DeltaApplyStats &stats = res.stats;

    if (fullInstall && ps.pairs() > 0) {
        // Full install onto a non-empty cache: reconcile. Community
        // pairs the user never touched and the target no longer lists
        // are stale — drop them so the device converges to the target
        // model. User-accessed pairs follow the retention rule.
        std::unordered_set<u64> wanted;
        wanted.reserve(delta.adds.size());
        for (const auto &sp : delta.adds) {
            const auto &q = u.query(sp.pair.query);
            const auto &r = u.result(sp.pair.result);
            wanted.insert(matchKey(fnv1a(q.text), urlHash(r.url)));
        }
        // The table only exposes hashes; map them back to pair ids the
        // way the server does (cache_manager's reverse map), built
        // lazily because this path is the rare recovery one.
        std::unordered_map<u64, workload::PairRef> reverse;
        reverse.reserve(ps.pairs() * 2);
        for (u32 qid = 0; qid < u.numQueries(); ++qid) {
            const u64 qh = fnv1a(u.query(qid).text);
            for (const auto &[rid, w] : u.query(qid).results) {
                (void)w;
                reverse.emplace(
                    matchKey(qh, urlHash(u.result(rid).url)),
                    workload::PairRef{qid, rid});
            }
        }
        struct Stale
        {
            workload::PairRef pair;
            bool accessed;
        };
        std::vector<Stale> stale;
        ps.table().forEachPair([&](u64 qfnv, const ResultRef &r) {
            const u64 key = matchKey(qfnv, r.urlHash);
            if (wanted.count(key))
                return;
            const auto it = reverse.find(key);
            if (it == reverse.end()) {
                pc_warn("unmatchable device pair in reconcile");
                return;
            }
            stale.push_back(Stale{it->second, r.userAccessed});
        });
        for (const auto &s : stale) {
            if (s.accessed) {
                ++stats.keptAccessed;
                continue;
            }
            ps.evictPair(s.pair);
            ++stats.staleEvicted;
        }
    }

    for (const auto &sp : delta.adds)
        commitAdd(ps, sp, time, stats);

    for (const auto &p : delta.evicts) {
        const auto existing = ps.findPair(p);
        if (existing.has_value() && existing->userAccessed) {
            ++stats.keptAccessed;
            continue;
        }
        if (ps.evictPair(p))
            ++stats.evicted;
    }

    for (const auto &sp : delta.reranks) {
        const auto existing = ps.findPair(sp.pair);
        if (!existing.has_value())
            continue;
        // Accessed pairs only ratchet upward; the user's clicks
        // outrank the community's demotion.
        const double score = existing->userAccessed
                                 ? std::max(existing->score, sp.score)
                                 : sp.score;
        ps.setPairScore(sp.pair, score);
        ++stats.reranked;
    }

    res.ok = true;
    return res;
}

DeltaApplyStats
applyCommunityDelta(PocketSearch &ps, const CommunityDelta &delta,
                    SimTime &time)
{
    const auto res = tryApplyCommunityDelta(ps, delta, time);
    pc_assert(res.ok, "community delta failed validation: ",
              deltaApplyErrorName(res.error));
    return res.stats;
}

std::string
encodeDelta(const CommunityDelta &delta)
{
    std::string out;
    out.reserve(kHeaderBytes +
                kScoredBytes * (delta.adds.size() + delta.reranks.size()) +
                kEvictBytes * delta.evicts.size());
    out.append(kPayloadMagic, 4);
    put<u64>(out, delta.fromVersion);
    put<u64>(out, delta.toVersion);
    put<u32>(out, u32(delta.adds.size()));
    put<u32>(out, u32(delta.evicts.size()));
    put<u32>(out, u32(delta.reranks.size()));
    const auto putScored = [&](const ScoredPair &sp) {
        put<u32>(out, sp.pair.query);
        put<u32>(out, sp.pair.result);
        put<double>(out, sp.score);
        put<u64>(out, sp.volume);
    };
    for (const auto &sp : delta.adds)
        putScored(sp);
    for (const auto &p : delta.evicts) {
        put<u32>(out, p.query);
        put<u32>(out, p.result);
    }
    for (const auto &sp : delta.reranks)
        putScored(sp);
    return out;
}

std::optional<CommunityDelta>
decodeDelta(std::string_view payload)
{
    if (payload.size() < kHeaderBytes ||
        std::memcmp(payload.data(), kPayloadMagic, 4) != 0)
        return std::nullopt;
    const char *p = payload.data() + 4;
    CommunityDelta d;
    d.fromVersion = get<u64>(p);
    d.toVersion = get<u64>(p + 8);
    const u32 adds = get<u32>(p + 16);
    const u32 evicts = get<u32>(p + 20);
    const u32 reranks = get<u32>(p + 24);
    // Length check before any allocation: a corrupted count cannot
    // trigger a huge reserve. u64 arithmetic avoids overflow.
    const u64 want = u64(kHeaderBytes) +
                     u64(adds + u64(reranks)) * kScoredBytes +
                     u64(evicts) * kEvictBytes;
    if (payload.size() != want)
        return std::nullopt;

    p = payload.data() + kHeaderBytes;
    const auto getScored = [&p] {
        ScoredPair sp;
        sp.pair.query = get<u32>(p);
        sp.pair.result = get<u32>(p + 4);
        sp.score = get<double>(p + 8);
        sp.volume = get<u64>(p + 16);
        p += kScoredBytes;
        return sp;
    };
    d.adds.reserve(adds);
    for (u32 i = 0; i < adds; ++i)
        d.adds.push_back(getScored());
    d.evicts.reserve(evicts);
    for (u32 i = 0; i < evicts; ++i) {
        d.evicts.push_back(
            workload::PairRef{get<u32>(p), get<u32>(p + 4)});
        p += kEvictBytes;
    }
    d.reranks.reserve(reranks);
    for (u32 i = 0; i < reranks; ++i)
        d.reranks.push_back(getScored());
    return d;
}

std::string
frameDelta(const CommunityDelta &delta)
{
    const std::string payload = encodeDelta(delta);
    std::string out;
    out.reserve(payload.size() + kDeltaFrameOverhead);
    out.append(kFrameMagic, 4);
    put<u32>(out, u32(payload.size()));
    out.append(payload);
    put<u32>(out, crc32(payload));
    return out;
}

std::optional<CommunityDelta>
unframeDelta(std::string_view frame)
{
    FrameError err;
    return unframeDelta(frame, &err);
}

const char *
frameErrorName(FrameError e)
{
    switch (e) {
      case FrameError::None: return "crc_ok";
      case FrameError::TooShort: return "crc_too_short";
      case FrameError::BadMagic: return "crc_bad_magic";
      case FrameError::LengthMismatch: return "crc_length_mismatch";
      case FrameError::BadChecksum: return "crc_bad_checksum";
      case FrameError::BadPayload: return "crc_bad_payload";
    }
    return "?";
}

std::optional<CommunityDelta>
unframeDelta(std::string_view frame, FrameError *error)
{
    *error = FrameError::None;
    if (frame.size() < kDeltaFrameOverhead) {
        *error = FrameError::TooShort;
        return std::nullopt;
    }
    if (std::memcmp(frame.data(), kFrameMagic, 4) != 0) {
        *error = FrameError::BadMagic;
        return std::nullopt;
    }
    const u32 len = get<u32>(frame.data() + 4);
    if (frame.size() != std::size_t(len) + kDeltaFrameOverhead) {
        *error = FrameError::LengthMismatch;
        return std::nullopt;
    }
    const std::string_view payload = frame.substr(8, len);
    if (get<u32>(frame.data() + 8 + len) != crc32(payload)) {
        *error = FrameError::BadChecksum;
        return std::nullopt;
    }
    auto delta = decodeDelta(payload);
    if (!delta)
        *error = FrameError::BadPayload;
    return delta;
}

Bytes
deltaWireBytes(const CommunityDelta &delta, const QueryUniverse &universe)
{
    Bytes bytes = Bytes(encodeDelta(delta).size()) + kDeltaFrameOverhead;
    // Result records ship once per distinct result (the patch files
    // are per result, not per pair); ids outside the universe are
    // synthetic test pairs and carry no record.
    std::unordered_set<u32> shipped;
    for (const auto &sp : delta.adds) {
        if (sp.pair.result < universe.numResults() &&
            shipped.insert(sp.pair.result).second)
            bytes += QueryUniverse::recordSize(
                universe.result(sp.pair.result));
    }
    return bytes;
}

} // namespace pc::core
