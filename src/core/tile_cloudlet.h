/**
 * @file
 * Generic item-cache pocket cloudlet (ads, map tiles, yellow pages).
 *
 * Section 7 of the paper discusses how cloudlets other than search —
 * each caching fixed-size items selected by community popularity —
 * share the device's storage. TileCloudlet models that family: a set of
 * popular item ids cached in flash, with Zipf-distributed accesses, a
 * popularity-ordered content list so shrinkTo() can evict lowest-value
 * items first, and hit/footprint accounting through the Cloudlet
 * interface.
 */

#ifndef PC_CORE_TILE_CLOUDLET_H
#define PC_CORE_TILE_CLOUDLET_H

#include <string>
#include <unordered_set>
#include <vector>

#include "core/cloudlet.h"
#include "simfs/flash_store.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace pc::core {

/** Configuration of an item cloudlet. */
struct TileCloudletConfig
{
    std::string name = "tiles";
    Bytes itemSize = 5 * kKiB;      ///< Table 2 granularity.
    u64 universeItems = 1'000'000;  ///< Distinct items in the service.
    double popularitySkew = 0.8;    ///< Zipf exponent of accesses.
    /** Per-item index entry bytes (id + offset in fast memory). */
    Bytes indexEntryBytes = 16;
};

/**
 * Popularity-cached item store.
 */
class TileCloudlet : public Cloudlet
{
  public:
    /**
     * @param store Flash store holding the item payload file. Must
     *        outlive the cloudlet.
     * @param cfg Service shape.
     */
    TileCloudlet(pc::simfs::FlashStore &store,
                 const TileCloudletConfig &cfg);

    std::string name() const override { return cfg_.name; }
    Bytes indexBytes() const override;
    Bytes dataBytes() const override;
    u64 lookups() const override { return lookups_; }
    u64 hits() const override { return hits_; }

    /**
     * Fill the cache with the `count` most popular items (the
     * community push). Replaces current contents.
     * @param[out] time Accumulates flash write latency.
     */
    void fillTop(u64 count, SimTime &time);

    /**
     * Serve an access to item `id`.
     * @param[out] time Accumulates flash read latency on a hit.
     * @return True on a cache hit.
     */
    bool access(u64 id, SimTime &time);

    /** Sample a community access (Zipf over item popularity). */
    u64 sampleAccess(Rng &rng) const { return zipf_.sample(rng); }

    /** Expected hit rate of the current contents under the Zipf. */
    double expectedHitRate() const;

    /** Items currently cached. */
    u64 itemsCached() const { return cached_.size(); }

    Bytes shrinkTo(Bytes data_budget) override;

    /** Configuration. */
    const TileCloudletConfig &config() const { return cfg_; }

  private:
    /** Rewrite the payload file to match `cachedTop_` items. */
    void rewriteFile(SimTime &time);

    pc::simfs::FlashStore &store_;
    TileCloudletConfig cfg_;
    ZipfSampler zipf_;
    pc::simfs::FileId file_;
    /** Cached item ids (popularity ranks). */
    std::unordered_set<u64> cached_;
    /** Highest rank cached + 1 (contents are always a top-k prefix). */
    u64 topK_ = 0;
    u64 lookups_ = 0;
    u64 hits_ = 0;
};

/**
 * Cloudlet-interface adapter over PocketSearch, so the search cache
 * participates in device-level resource accounting alongside its
 * sibling cloudlets.
 */
class PocketSearch;

class SearchCloudlet : public Cloudlet
{
  public:
    /** @param ps The search cache; must outlive the adapter. */
    explicit SearchCloudlet(PocketSearch &ps) : ps_(ps) {}

    std::string name() const override { return "search"; }
    Bytes indexBytes() const override;
    Bytes dataBytes() const override;
    u64 lookups() const override;
    u64 hits() const override;

    /**
     * The search cache cannot drop individual records cheaply (they
     * are shared across queries); shrinking is handled by rebuilding
     * content at a smaller budget during the nightly update, so the
     * online shrink is a no-op that reports zero released bytes.
     */
    Bytes shrinkTo(Bytes) override { return 0; }

  private:
    PocketSearch &ps_;
};

} // namespace pc::core

#endif // PC_CORE_TILE_CLOUDLET_H
