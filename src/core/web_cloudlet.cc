#include "core/web_cloudlet.h"

#include <algorithm>

#include "util/logging.h"

namespace pc::core {

WebContentCloudlet::WebContentCloudlet(pc::simfs::FlashStore &store,
                                       const WebCloudletConfig &cfg)
    : store_(store), cfg_(cfg), file_(store.create("web.dat"))
{
    pc_assert(cfg_.pageSize > 0, "page size must be positive");
}

Bytes
WebContentCloudlet::indexBytes() const
{
    return Bytes(pages_.size()) * cfg_.indexEntryBytes;
}

Bytes
WebContentCloudlet::dataBytes() const
{
    return Bytes(pages_.size()) * cfg_.pageSize;
}

void
WebContentCloudlet::installPage(const std::string &url, bool dynamic,
                                SimTime now, SimTime &time)
{
    auto it = pages_.find(url);
    if (it == pages_.end()) {
        CachedPage p;
        p.dynamic = dynamic;
        p.lastRefresh = now;
        pages_.emplace(url, p);
        store_.append(file_,
                      std::string(std::size_t(cfg_.pageSize), '\0'),
                      time);
    } else {
        it->second.lastRefresh = now;
    }
}

bool
WebContentCloudlet::isFresh(const CachedPage &p, SimTime now) const
{
    if (!p.dynamic)
        return true; // static content tolerates the nightly cadence
    return now - p.lastRefresh < cfg_.dynamicChangePeriod;
}

bool
WebContentCloudlet::visit(const std::string &url, SimTime now,
                          SimTime &time)
{
    ++stats_.visits;
    auto it = pages_.find(url);
    if (it == pages_.end()) {
        ++stats_.missUncached;
        return false;
    }
    ++it->second.visits;
    if (!isFresh(it->second, now)) {
        ++stats_.missStale;
        return false;
    }
    ++stats_.hitsFresh;
    time += cfg_.fetchLatency;
    return true;
}

void
WebContentCloudlet::realtimeRefresh(SimTime now)
{
    for (auto &[url, p] : pages_) {
        (void)url;
        if (!p.dynamic || !p.inRealtimeSet)
            continue;
        if (now - p.lastRefresh >= cfg_.dynamicChangePeriod / 2) {
            p.lastRefresh = now;
            stats_.realtimeBytes += cfg_.refreshPayload;
        }
    }
}

Bytes
WebContentCloudlet::bulkRefreshBytes() const
{
    Bytes total = 0;
    for (const auto &[url, p] : pages_) {
        (void)url;
        if (p.dynamic)
            total += cfg_.pageSize;
    }
    return total;
}

void
WebContentCloudlet::recomputeRealtimeSet()
{
    // Rank dynamic pages by revisit count; the top realtimeSetSize get
    // real-time refreshes (the paper: "only the small set of most
    // frequently visited data is updated in real time").
    std::vector<std::pair<u64, CachedPage *>> dynamic;
    for (auto &[url, p] : pages_) {
        (void)url;
        if (p.dynamic) {
            p.inRealtimeSet = false;
            dynamic.emplace_back(p.visits, &p);
        }
    }
    std::sort(dynamic.begin(), dynamic.end(),
              [](const auto &a, const auto &b) {
                  return a.first > b.first;
              });
    const std::size_t n =
        std::min<std::size_t>(cfg_.realtimeSetSize, dynamic.size());
    for (std::size_t i = 0; i < n; ++i)
        dynamic[i].second->inRealtimeSet = true;
}

Bytes
WebContentCloudlet::shrinkTo(Bytes data_budget)
{
    const u64 keep = data_budget / cfg_.pageSize;
    if (keep >= pages_.size())
        return 0;
    const Bytes before = dataBytes();
    // Evict least-revisited pages first.
    std::vector<std::pair<u64, std::string>> order;
    order.reserve(pages_.size());
    for (const auto &[url, p] : pages_)
        order.emplace_back(p.visits, url);
    std::sort(order.begin(), order.end());
    for (std::size_t i = 0; pages_.size() > keep && i < order.size();
         ++i)
        pages_.erase(order[i].second);
    SimTime t = 0;
    store_.truncateAndWrite(
        file_, std::string(std::size_t(dataBytes()), '\0'), t);
    return before - dataBytes();
}

const CachedPage *
WebContentCloudlet::find(const std::string &url) const
{
    const auto it = pages_.find(url);
    return it == pages_.end() ? nullptr : &it->second;
}

} // namespace pc::core
