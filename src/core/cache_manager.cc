#include "core/cache_manager.h"

#include "util/hash.h"
#include "util/logging.h"

namespace pc::core {

namespace {

/** Server-side key for hash matching: combine query and URL hashes. */
u64
matchKey(u64 query_fnv, u64 url_hash)
{
    return hashCombine(query_fnv, url_hash);
}

} // namespace

CounterBag
UpdateStats::toCounters() const
{
    CounterBag bag;
    bag.bump("core.update.bytes_to_server", bytesToServer);
    bag.bump("core.update.bytes_to_phone", bytesToPhone);
    bag.bump("core.update.pairs_kept", pairsKept);
    bag.bump("core.update.pairs_expired", pairsExpired);
    bag.bump("core.update.pairs_pruned", pairsPruned);
    bag.bump("core.update.pairs_added", pairsAdded);
    bag.bump("core.update.conflicts", conflicts);
    bag.bump("core.update.records_patched", recordsPatched);
    return bag;
}

void
UpdateStats::publishMetrics(obs::MetricRegistry &reg) const
{
    reg.importCounters(toCounters());
}

CacheManager::CacheManager(const QueryUniverse &universe)
    : universe_(universe)
{
    // The server can hash every query/result it has ever logged; build
    // the equivalent reverse map once.
    reverse_.reserve(universe_.numQueries() * 2);
    for (u32 qid = 0; qid < universe_.numQueries(); ++qid) {
        const auto &q = universe_.query(qid);
        const u64 qh = fnv1a(q.text);
        for (const auto &[rid, w] : q.results) {
            (void)w;
            const u64 uh = urlHash(universe_.result(rid).url);
            reverse_.emplace(matchKey(qh, uh),
                             workload::PairRef{qid, rid});
        }
    }
}

std::vector<CacheManager::DevicePair>
CacheManager::parseUpload(const std::vector<WirePair> &wire) const
{
    std::vector<DevicePair> out;
    out.reserve(wire.size());
    for (const auto &w : wire) {
        const auto it = reverse_.find(matchKey(w.queryFnv, w.urlHash));
        if (it == reverse_.end()) {
            // Hash the server cannot match (should not happen in the
            // simulation — every device pair came from the universe).
            pc_warn("unmatchable device pair hash");
            continue;
        }
        out.push_back(DevicePair{it->second, w.score, w.accessed});
    }
    return out;
}

UpdateStats
CacheManager::update(PocketSearch &ps, const logs::TripletTable &fresh,
                     const UpdatePolicy &policy, SimTime &time) const
{
    UpdateStats stats;

    // 1. Phone -> server: the hash table travels as an actual encoded
    //    blob; the server decodes it and matches the hashes against
    //    its own logs.
    const std::string upload = encodeTable(ps.table());
    stats.bytesToServer = upload.size();
    const auto decoded = decodeTable(upload);
    pc_assert(decoded.has_value(), "device produced a malformed upload");
    const auto device_pairs = parseUpload(*decoded);

    // 2. Server: fresh popular set from the latest logs.
    CacheContentBuilder builder(universe_, ps.config().layout);
    CacheContents fresh_contents = builder.build(fresh, policy.content);

    std::unordered_map<u64, double> fresh_scores;
    fresh_scores.reserve(fresh_contents.pairs.size());
    for (const auto &sp : fresh_contents.pairs) {
        const auto &q = universe_.query(sp.pair.query);
        const auto &r = universe_.result(sp.pair.result);
        fresh_scores.emplace(matchKey(fnv1a(q.text), urlHash(r.url)),
                             sp.score);
    }

    // 3. Merge. Start from the fresh set; retain user-accessed device
    //    pairs unless expired; resolve conflicts with max score.
    struct Merged
    {
        workload::PairRef pair;
        double score;
        bool accessed;
    };
    std::unordered_map<u64, Merged> merged;
    merged.reserve(fresh_contents.pairs.size() + device_pairs.size());
    for (const auto &sp : fresh_contents.pairs) {
        const auto &q = universe_.query(sp.pair.query);
        const auto &r = universe_.result(sp.pair.result);
        merged.emplace(matchKey(fnv1a(q.text), urlHash(r.url)),
                       Merged{sp.pair, sp.score, false});
    }
    stats.pairsAdded = merged.size();

    for (const auto &dp : device_pairs) {
        const auto &q = universe_.query(dp.pair.query);
        const auto &r = universe_.result(dp.pair.result);
        const u64 key = matchKey(fnv1a(q.text), urlHash(r.url));
        auto it = merged.find(key);
        if (it != merged.end()) {
            // Conflict: device score vs fresh server score -> maximum.
            ++stats.conflicts;
            --stats.pairsAdded; // was counted as a fresh addition
            it->second.score = std::max(it->second.score, dp.score);
            it->second.accessed = dp.accessed;
            ++stats.pairsKept;
            continue;
        }
        if (!dp.accessed) {
            // Community pair the user never touched: pruned.
            ++stats.pairsPruned;
            continue;
        }
        if (dp.score < policy.expiryScore) {
            // User pair whose score decayed away: expired.
            ++stats.pairsExpired;
            continue;
        }
        merged.emplace(key, Merged{dp.pair, dp.score, true});
        ++stats.pairsKept;
    }

    // 4. Server -> phone: new hash table + database patches.
    ps.clearTable();
    for (const auto &[key, m] : merged) {
        (void)key;
        if (ps.installPair(m.pair, m.score, m.accessed, time)) {
            ++stats.recordsPatched;
            stats.bytesToPhone += QueryUniverse::recordSize(
                universe_.result(m.pair.result));
        }
    }
    stats.bytesToPhone += ps.dramBytes();
    return stats;
}

} // namespace pc::core
