/**
 * @file
 * Bounded multi-producer/multi-consumer work queue with backpressure.
 *
 * Shared concurrency primitive of the worker-pool pipelines: the
 * cloud-side ingest moves batches of log records from a producer (the
 * log reader) to a pool of aggregation workers, and the parallel
 * fleet harness moves device indices out to simulation workers and
 * per-device telemetry back to the reducing thread. The queue is
 * deliberately *bounded*: a producer that outruns its consumers
 * blocks in push() until a slot frees up, so a month of logs never
 * balloons into a month of queued batches — the same backpressure
 * discipline a real ingestion service needs to survive its own
 * traffic spikes. Items only need to be movable, so move-only
 * payloads (telemetry carrying a MetricRegistry) flow through without
 * copies.
 *
 * Concurrency contract (ThreadSanitizer-checked in CI):
 *  - any number of producers and consumers may call push()/pop()
 *    concurrently;
 *  - close() wakes everyone: blocked producers return false, blocked
 *    consumers drain the remaining items and then return false;
 *  - depth watermarks are tracked under the queue lock, so
 *    maxDepth() is exact (but timing-dependent — never put it in a
 *    byte-deterministic report).
 */

#ifndef PC_SERVER_WORK_QUEUE_H
#define PC_SERVER_WORK_QUEUE_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "util/logging.h"
#include "util/types.h"

namespace pc::server {

/**
 * Bounded MPMC queue of T. See file comment for the contract.
 */
template <typename T>
class WorkQueue
{
  public:
    /** @param capacity Maximum items in flight (> 0). */
    explicit WorkQueue(std::size_t capacity) : capacity_(capacity)
    {
        pc_assert(capacity > 0, "WorkQueue needs capacity >= 1");
    }

    WorkQueue(const WorkQueue &) = delete;
    WorkQueue &operator=(const WorkQueue &) = delete;

    /**
     * Block until a slot is free, then enqueue. @return False if the
     * queue was closed before the item could be enqueued.
     */
    bool
    push(T item)
    {
        std::unique_lock<std::mutex> lk(mu_);
        notFull_.wait(lk, [&] {
            return closed_ || items_.size() < capacity_;
        });
        if (closed_)
            return false;
        items_.push_back(std::move(item));
        ++pushes_;
        depthSum_ += items_.size();
        if (items_.size() > maxDepth_)
            maxDepth_ = items_.size();
        lk.unlock();
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Enqueue only if a slot is free right now (no blocking).
     * @return False when full or closed.
     */
    bool
    tryPush(T item)
    {
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (closed_ || items_.size() >= capacity_)
                return false;
            items_.push_back(std::move(item));
            ++pushes_;
            depthSum_ += items_.size();
            if (items_.size() > maxDepth_)
                maxDepth_ = items_.size();
        }
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Block until an item is available, then dequeue into `out`.
     * @return False once the queue is closed *and* drained.
     */
    bool
    pop(T &out)
    {
        std::unique_lock<std::mutex> lk(mu_);
        notEmpty_.wait(lk, [&] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return false; // closed and drained
        out = std::move(items_.front());
        items_.pop_front();
        lk.unlock();
        notFull_.notify_one();
        return true;
    }

    /**
     * Dequeue only if an item is available right now (no blocking).
     * @return False when empty (closed or not) — poll closed() to
     * tell "momentarily empty" from "done", as pop() does internally.
     */
    bool
    tryPop(T &out)
    {
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (items_.empty())
                return false;
            out = std::move(items_.front());
            items_.pop_front();
        }
        notFull_.notify_one();
        return true;
    }

    /**
     * Close the queue: producers fail fast, consumers drain what is
     * left. Idempotent.
     */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lk(mu_);
            closed_ = true;
        }
        notEmpty_.notify_all();
        notFull_.notify_all();
    }

    /** True once close() has been called. */
    bool
    closed() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return closed_;
    }

    /** Items currently queued (racy the instant it returns). */
    std::size_t
    depth() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return items_.size();
    }

    /** Configured capacity. */
    std::size_t capacity() const { return capacity_; }

    /** Highest depth ever observed at a push (exact; timing-dependent). */
    std::size_t
    maxDepth() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return maxDepth_;
    }

    /** Mean depth observed at pushes (timing-dependent). */
    double
    meanDepth() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return pushes_ ? double(depthSum_) / double(pushes_) : 0.0;
    }

    /** Total successful pushes. */
    u64
    pushes() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return pushes_;
    }

  private:
    const std::size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable notEmpty_;
    std::condition_variable notFull_;
    std::deque<T> items_;
    bool closed_ = false;
    std::size_t maxDepth_ = 0;
    u64 depthSum_ = 0;
    u64 pushes_ = 0;
};

} // namespace pc::server

#endif // PC_SERVER_WORK_QUEUE_H
