#include "server/builder.h"

#include <algorithm>
#include <chrono>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "server/work_queue.h"
#include "util/hash.h"
#include "util/logging.h"

namespace pc::server {

namespace {

/** Pack a PairRef into a 64-bit map key (matches TripletTable). */
constexpr u64
pairKey(const workload::PairRef &p)
{
    return (u64(p.query) << 32) | p.result;
}

/** One work item: a contiguous slice of the log's record array. */
struct Batch
{
    std::size_t begin = 0;
    std::size_t end = 0;
};

/** Per-worker private aggregation state (no locks on the hot path). */
struct WorkerState
{
    /** counts[shard][pairKey] -> volume. */
    std::vector<std::unordered_map<u64, u64>> counts;
    /** Records routed to each shard by this worker. */
    std::vector<u64> shardRecords;
    /** Poisoned records this worker dropped (ids out of range). */
    u64 skipped = 0;
};

} // namespace

CommunityModelBuilder::CommunityModelBuilder(
    const workload::QueryUniverse &universe, const BuildConfig &cfg)
    : universe_(universe), cfg_(cfg)
{
    pc_assert(cfg_.shards >= 1, "builder needs at least one shard");
    pc_assert(cfg_.threads >= 1, "builder needs at least one worker");
    pc_assert(cfg_.batchRecords >= 1, "batch size must be positive");
    pc_assert(cfg_.queueCapacity >= 1, "queue capacity must be positive");
}

u32
CommunityModelBuilder::shardOf(u32 query_id) const
{
    // Query-*hash* partitioning: the same fnv1a the device hash table
    // keys on, so a real server could shard raw log lines without the
    // id space the simulation enjoys.
    return u32(fnv1a(universe_.query(query_id).text) % cfg_.shards);
}

CommunityModel
CommunityModelBuilder::build(const workload::SearchLog &log, u64 version,
                             const core::ContentPolicy &policy) const
{
    const auto wallStart = std::chrono::steady_clock::now();
    const auto &records = log.records();
    const u32 nShards = cfg_.shards;
    const u32 nThreads = cfg_.threads;

    CommunityModel model;
    model.version = version;
    model.stats.shards = nShards;
    model.stats.threads = nThreads;
    model.stats.records = records.size();
    model.stats.shardStats.resize(nShards);

    // ---- Stage 1: batched ingest through the bounded queue. -------------
    std::vector<WorkerState> workers(nThreads);
    for (auto &w : workers) {
        w.counts.resize(nShards);
        w.shardRecords.assign(nShards, 0);
    }

    WorkQueue<Batch> queue(cfg_.queueCapacity);
    {
        std::vector<std::thread> pool;
        pool.reserve(nThreads);
        for (u32 t = 0; t < nThreads; ++t) {
            pool.emplace_back([&, t] {
                WorkerState &w = workers[t];
                Batch b;
                while (queue.pop(b)) {
                    for (std::size_t i = b.begin; i < b.end; ++i) {
                        const auto &pair = records[i].pair;
                        // Poisoned record (ids the universe cannot
                        // interpret): skip and count. shardOf would
                        // otherwise fault on the query lookup.
                        if (pair.query >= universe_.numQueries() ||
                            pair.result >= universe_.numResults()) {
                            ++w.skipped;
                            continue;
                        }
                        const u32 s = shardOf(pair.query);
                        ++w.counts[s][pairKey(pair)];
                        ++w.shardRecords[s];
                    }
                }
            });
        }

        // Producer: slice the log; push() blocks when workers lag
        // (backpressure), so at most queueCapacity batches are in
        // flight no matter how large the month is.
        for (std::size_t at = 0; at < records.size();
             at += cfg_.batchRecords) {
            Batch b{at, std::min(records.size(),
                                 at + std::size_t(cfg_.batchRecords))};
            queue.push(b);
            ++model.stats.batches;
        }
        queue.close();
        for (auto &th : pool)
            th.join();
    }
    model.stats.maxQueueDepth = queue.maxDepth();
    model.stats.meanQueueDepth = queue.meanDepth();

    // ---- Stage 2: merge worker counts per shard (u64 sums — exact,
    // order-independent), then sort each shard in rowOrder. Shards are
    // independent, so the sort fans out over the same thread budget.
    std::vector<std::vector<logs::Triplet>> shardRows(nShards);
    {
        std::vector<std::thread> pool;
        const u32 sortThreads = std::min(nThreads, nShards);
        pool.reserve(sortThreads);
        for (u32 t = 0; t < sortThreads; ++t) {
            pool.emplace_back([&, t] {
                for (u32 s = t; s < nShards; s += sortThreads) {
                    std::unordered_map<u64, u64> merged;
                    for (const auto &w : workers)
                        for (const auto &[key, vol] : w.counts[s])
                            merged[key] += vol;
                    auto &rows = shardRows[s];
                    rows.reserve(merged.size());
                    for (const auto &[key, vol] : merged) {
                        logs::Triplet row;
                        row.pair = workload::PairRef{
                            u32(key >> 32), u32(key & 0xffffffffu)};
                        row.volume = vol;
                        rows.push_back(row);
                    }
                    std::sort(rows.begin(), rows.end(),
                              logs::TripletTable::rowOrder);
                }
            });
        }
        for (auto &th : pool)
            th.join();
    }

    for (u32 s = 0; s < nShards; ++s) {
        auto &st = model.stats.shardStats[s];
        st.rows = shardRows[s].size();
        for (const auto &w : workers)
            st.records += w.shardRecords[s];
    }
    for (const auto &w : workers)
        model.stats.skippedRecords += w.skipped;
    if (model.stats.skippedRecords > 0)
        pc_warn("model build v", version, " skipped ",
                model.stats.skippedRecords, " poisoned log records");

    // ---- Stage 3: deterministic k-way shard merge. Shards partition
    // the pair space and rowOrder is a strict total order, so merging
    // the sorted runs in that order reproduces the global sort of the
    // sequential build exactly.
    std::vector<logs::Triplet> rows;
    {
        std::size_t total = 0;
        for (const auto &sr : shardRows)
            total += sr.size();
        rows.reserve(total);

        // Heap entry: (next row of shard s). Shard index breaks no
        // ties — rowOrder cannot compare equal across shards.
        struct Head
        {
            u32 shard;
            std::size_t at;
        };
        auto headGreater = [&](const Head &a, const Head &b) {
            // priority_queue is a max-heap; invert rowOrder.
            return logs::TripletTable::rowOrder(shardRows[b.shard][b.at],
                                                shardRows[a.shard][a.at]);
        };
        std::priority_queue<Head, std::vector<Head>,
                            decltype(headGreater)>
            heap(headGreater);
        for (u32 s = 0; s < nShards; ++s)
            if (!shardRows[s].empty())
                heap.push(Head{s, 0});
        while (!heap.empty()) {
            const Head h = heap.top();
            heap.pop();
            rows.push_back(shardRows[h.shard][h.at]);
            if (h.at + 1 < shardRows[h.shard].size())
                heap.push(Head{h.shard, h.at + 1});
        }
    }
    model.stats.distinctPairs = rows.size();
    model.table = logs::TripletTable::fromSortedRows(std::move(rows));

    // ---- Stage 4: content selection (identical to the sequential
    // path — same builder, same policy, same table).
    core::CacheContentBuilder contentBuilder(universe_);
    model.contents = contentBuilder.build(model.table, policy);

    model.stats.wallMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wallStart)
            .count();
    return model;
}

} // namespace pc::server
