#include "server/model.h"

#include <cstring>

namespace pc::server {

namespace {

template <typename T>
void
put(std::string &out, T v)
{
    char buf[sizeof(T)];
    std::memcpy(buf, &v, sizeof(T));
    out.append(buf, sizeof(T));
}

} // namespace

std::string
CommunityModel::encode() const
{
    const auto &rows = table.rows();
    const auto &pairs = contents.pairs;
    std::string out;
    out.reserve(8 + 16 + rows.size() * 16 + pairs.size() * 24 + 64);
    out.append("PCMD", 4);
    put<u64>(out, version);
    put<u64>(out, u64(rows.size()));
    for (const auto &row : rows) {
        put<u32>(out, row.pair.query);
        put<u32>(out, row.pair.result);
        put<u64>(out, row.volume);
    }
    put<u64>(out, u64(pairs.size()));
    for (const auto &sp : pairs) {
        put<u32>(out, sp.pair.query);
        put<u32>(out, sp.pair.result);
        put<double>(out, sp.score);
        put<u64>(out, sp.volume);
    }
    put<u64>(out, u64(contents.uniqueResults));
    put<u64>(out, contents.flashBytes);
    put<u64>(out, contents.dramBytes);
    put<double>(out, contents.cumulativeShare);
    return out;
}

} // namespace pc::server
