/**
 * @file
 * Sharded, multi-threaded community-model builder (the cloud half of
 * Section 5.1, sized for the paper's 200M-query month).
 *
 * Pipeline:
 *
 *   log records ──batches──▶ bounded WorkQueue ──▶ T aggregation
 *   workers (each with private per-shard count maps) ──join──▶
 *   per-shard count merge ──▶ per-shard sort ──▶ deterministic
 *   k-way shard merge ──▶ TripletTable ──▶ CacheContents
 *
 * Records are partitioned by *query hash* (fnv1a of the query string,
 * the same hash the device table keys on), so one query's volume
 * always lands in one shard and shards partition the pair space.
 *
 * Determinism invariant (tested, and the reason the whole fleet of
 * byte-deterministic benches survives this subsystem): for any shard
 * count N >= 1 and thread count T >= 1, the built model is
 * byte-identical to the sequential build (TripletTable::fromLog +
 * CacheContentBuilder). The argument:
 *
 *  - per-pair volumes are u64 sums — associative and commutative, so
 *    worker scheduling cannot change any count;
 *  - each shard is sorted with TripletTable::rowOrder, a strict total
 *    order (volume desc, packed pair id asc — no equal keys);
 *  - shards partition the pairs, so the k-way merge under the same
 *    total order reproduces exactly the globally sorted row sequence.
 *
 * Only the *timing* statistics (wall ms, queue watermarks) vary run
 * to run; everything in CommunityModel::encode() is invariant.
 */

#ifndef PC_SERVER_BUILDER_H
#define PC_SERVER_BUILDER_H

#include "server/model.h"
#include "workload/searchlog.h"

namespace pc::server {

/** Build-pipeline shape. */
struct BuildConfig
{
    u32 shards = 8;          ///< Query-hash partitions (>= 1).
    u32 threads = 4;         ///< Aggregation workers (>= 1).
    u32 batchRecords = 8192; ///< Log records per work item.
    u32 queueCapacity = 64;  ///< Batches in flight (backpressure bound).
};

/**
 * Builds versioned community models from search logs. Stateless
 * between builds; thread-safe to the extent that distinct builders
 * may run concurrently (one build spawns its own worker pool).
 */
class CommunityModelBuilder
{
  public:
    /**
     * @param universe Interprets pair ids (query strings are hashed
     *        for sharding; results are sized for the contents).
     * @param cfg Pipeline shape.
     */
    CommunityModelBuilder(const workload::QueryUniverse &universe,
                          const BuildConfig &cfg = {});

    /**
     * Mine one log into a model.
     *
     * @param log The month of community logs.
     * @param version Version stamp for the result.
     * @param policy Content selection policy.
     */
    CommunityModel build(const workload::SearchLog &log, u64 version,
                         const core::ContentPolicy &policy) const;

    /** Shard a query id the way the pipeline does (exposed for tests). */
    u32 shardOf(u32 query_id) const;

    /** Configuration. */
    const BuildConfig &config() const { return cfg_; }

  private:
    const workload::QueryUniverse &universe_;
    BuildConfig cfg_;
};

} // namespace pc::server

#endif // PC_SERVER_BUILDER_H
