/**
 * @file
 * CloudUpdateService — the cloud half of the update protocol.
 *
 * Owns the sharded CommunityModelBuilder, a bounded history of
 * versioned community models, and the delta generator devices sync
 * against. One service instance stands in for the paper's server-side
 * log-analysis pipeline (Section 5.4): each call to ingest() turns one
 * log window into the next model version; each device sync computes
 * the add/evict/re-rank lists between the device's last-synced version
 * and the target version and ships them over a (faulty) radio link
 * with the device's own retry machinery.
 *
 * A device whose version fell off the bounded history — or that never
 * synced (version 0) — receives a full install: a delta from the empty
 * model, which applyCommunityDelta handles identically.
 *
 * The service keeps its own obs::MetricRegistry ("server.*": ingest
 * volume, queue depths, delta sizes and op counts, sync outcomes) so a
 * fleet run can fold cloud-side metrics into the same snapshot as the
 * devices' (FleetCollector::mergeCloud).
 */

#ifndef PC_SERVER_SERVICE_H
#define PC_SERVER_SERVICE_H

#include <map>
#include <optional>

#include "core/delta.h"
#include "device/mobile_device.h"
#include "obs/metrics.h"
#include "server/builder.h"
#include "server/model.h"

namespace pc::server {

/** Service configuration. */
struct ServiceConfig
{
    /** Sharding/threading of the model builder. */
    BuildConfig build{};
    /** Content selection applied to every model version. */
    core::ContentPolicy policy{};
    /**
     * Model versions kept for delta generation. Devices older than the
     * window get a full install instead of a delta.
     */
    std::size_t maxVersions = 16;
    /**
     * Admission control: syncs admitted per published version through
     * syncDevice() (0 = unbounded). Once a version's budget is spent,
     * further syncs are shed — counted under "server.sync.shed", no
     * delta generated, no radio traffic, device untouched — so a
     * thundering-herd reconnect after a fleet-wide outage degrades
     * into retry-next-window instead of an unbounded sync queue. The
     * budget resets at every ingest().
     */
    u64 syncBudgetPerVersion = 0;
    /**
     * Publish health.server.* busy-time/demand ledgers (obs/health.h)
     * from the service's deterministic op counts, using the modeled
     * per-op costs in obs/health.h — never the measured wall clocks,
     * which are banned from byte-gated artifacts. Off by default so
     * every committed baseline stays byte-identical.
     */
    bool healthAccounting = false;
};

/**
 * The cloud update service.
 */
class CloudUpdateService
{
  public:
    /** @param universe Shared world model (also the builder's). */
    explicit CloudUpdateService(const workload::QueryUniverse &universe,
                                const ServiceConfig &cfg = {});

    /**
     * Ingest one log window and publish the next model version
     * (1, 2, ...). The sharded multi-threaded build is byte-identical
     * to a sequential build of the same log (see builder.h).
     * @return The freshly published model.
     */
    const CommunityModel &ingest(const workload::SearchLog &log);

    /** Latest published version; 0 before the first ingest. */
    u64 latestVersion() const { return latest_; }

    /** True if `version` is still in the history window. */
    bool
    hasVersion(u64 version) const
    {
        return history_.count(version) != 0;
    }

    /** Oldest version still in the history window; 0 before ingest. */
    u64
    oldestVersion() const
    {
        return history_.empty() ? 0 : history_.begin()->first;
    }

    /**
     * A model by version, or nullptr when the version is out of the
     * history window (evicted, never published, or 0). The clean
     * lookup path for anything driven by device-supplied versions.
     */
    const CommunityModel *findModel(u64 version) const;

    /** A model by version. @pre hasVersion(version). */
    const CommunityModel &model(u64 version) const;

    /** The latest model. @pre latestVersion() != 0. */
    const CommunityModel &latest() const { return model(latest_); }

    /**
     * Delta from `from_version` to `to_version` (0 = latest), or
     * nullopt when the *target* version is unavailable (off-window
     * request, or no model published yet) — a typed error instead of
     * a crashed pipeline on a bad device request. A from-version of 0
     * or one that fell off the history produces a full install (delta
     * against the empty model, fromVersion 0). Deterministic: the
     * same two versions always yield byte-identical deltas
     * (encodeDelta).
     */
    std::optional<core::CommunityDelta>
    tryMakeDelta(u64 from_version, u64 to_version = 0) const;

    /**
     * Asserting form of tryMakeDelta for callers that know the target
     * exists. @pre the target version is in the history window.
     */
    core::CommunityDelta makeDelta(u64 from_version,
                                   u64 to_version = 0) const;

    /**
     * Sync one device to `target_version` (0 = latest) over `path`:
     * generate the delta against the device's current version, let the
     * device download and apply it (retry/backoff under its fault
     * plan), and account the outcome in the service metrics.
     */
    device::MobileDevice::CommunitySyncResult
    syncDevice(device::MobileDevice &dev, u64 target_version = 0,
               device::ServePath path = device::ServePath::ThreeG);

    /**
     * What one sync did, for deferred registry accounting. Captured by
     * syncDetached(), replayed by accountSync().
     */
    struct SyncAccounting
    {
        bool ok = false;         ///< Delta downloaded and applied.
        Bytes deltaBytes = 0;    ///< Downlink payload on success.
        std::size_t adds = 0;    ///< Delta op counts (success only).
        std::size_t evicts = 0;
        std::size_t reranks = 0;
        bool fullInstall = false; ///< Delta was a from-v0 install.
        bool shed = false;        ///< Admission control dropped the sync.
        bool noVersion = false;   ///< Target version off the window.
        bool rejected = false;    ///< Device rejected the delta (skew).
        bool escalated = false;   ///< Full install forced by a bad-delta
                                  ///< streak (device escalation).
        u32 corruptRetries = 0;   ///< Frames the device re-requested
                                  ///< after CRC failures.
    };

    /**
     * The read-only half of syncDevice(): generate the delta and let
     * the device download/apply it, but account nothing — the outcome
     * lands in `*acct` for a later accountSync(). Const and touches no
     * service state, so any number of workers may sync their (private)
     * devices concurrently, as long as no ingest() runs at the same
     * time. The parallel fleet harness uses this plus an index-ordered
     * accountSync() replay to keep the service registry byte-identical
     * to a sequential run.
     */
    device::MobileDevice::CommunitySyncResult
    syncDetached(device::MobileDevice &dev, SyncAccounting *acct,
                 u64 target_version = 0,
                 device::ServePath path = device::ServePath::ThreeG) const;

    /**
     * Fold one detached sync's outcome into the service metrics.
     * syncDevice() == syncDetached() + accountSync(); replaying
     * accountings in the order the sequential run would have produced
     * them reproduces the registry byte for byte (counter sums are
     * order-free; the delta-bytes histogram sees the same observation
     * sequence). Not thread-safe — call from the reducing thread only.
     */
    void accountSync(const SyncAccounting &acct);

    /** Cloud-side metrics ("server.*"). */
    obs::MetricRegistry &metrics() { return registry_; }
    /** Cloud-side metrics ("server.*"). */
    const obs::MetricRegistry &metrics() const { return registry_; }

    /** Configuration in use. */
    const ServiceConfig &config() const { return cfg_; }

  private:
    /** Fold one build's stats into the registry (single-threaded). */
    void publishBuildMetrics(const CommunityModel &m);

    const workload::QueryUniverse &universe_;
    ServiceConfig cfg_;
    CommunityModelBuilder builder_;
    /** version -> model; ordered so eviction drops the oldest. */
    std::map<u64, CommunityModel> history_;
    u64 latest_ = 0;
    /** Syncs admitted against the current version (admission control). */
    u64 syncsThisVersion_ = 0;
    obs::MetricRegistry registry_;
};

} // namespace pc::server

#endif // PC_SERVER_SERVICE_H
