#include "server/service.h"

#include "obs/causal.h"
#include "obs/health.h"
#include "util/logging.h"
#include "util/strings.h"

namespace pc::server {

CloudUpdateService::CloudUpdateService(
    const workload::QueryUniverse &universe, const ServiceConfig &cfg)
    : universe_(universe), cfg_(cfg), builder_(universe, cfg.build)
{
    pc_assert(cfg_.maxVersions >= 1, "history needs at least one slot");
}

const CommunityModel &
CloudUpdateService::ingest(const workload::SearchLog &log)
{
    const u64 version = latest_ + 1;
    CommunityModel m = builder_.build(log, version, cfg_.policy);
    auto [it, inserted] = history_.emplace(version, std::move(m));
    pc_assert(inserted, "model version already published");
    latest_ = version;
    syncsThisVersion_ = 0; // fresh version, fresh admission budget
    while (history_.size() > cfg_.maxVersions)
        history_.erase(history_.begin());
    publishBuildMetrics(it->second);
    return it->second;
}

const CommunityModel *
CloudUpdateService::findModel(u64 version) const
{
    const auto it = history_.find(version);
    return it == history_.end() ? nullptr : &it->second;
}

const CommunityModel &
CloudUpdateService::model(u64 version) const
{
    const CommunityModel *m = findModel(version);
    pc_assert(m != nullptr, "model version not in history");
    return *m;
}

std::optional<core::CommunityDelta>
CloudUpdateService::tryMakeDelta(u64 from_version, u64 to_version) const
{
    if (to_version == 0)
        to_version = latest_;
    const CommunityModel *to = findModel(to_version);
    if (to == nullptr)
        return std::nullopt;
    if (from_version == to_version) {
        core::CommunityDelta d;
        d.fromVersion = from_version;
        d.toVersion = to_version;
        return d;
    }
    const CommunityModel *from = findModel(from_version);
    if (from_version == 0 || from == nullptr) {
        // Never synced, or the device's version fell off the history
        // window: full install (diff against the empty model).
        const core::CacheContents empty;
        return core::diffContents(empty, to->contents, 0, to_version);
    }
    return core::diffContents(from->contents, to->contents,
                              from_version, to_version);
}

core::CommunityDelta
CloudUpdateService::makeDelta(u64 from_version, u64 to_version) const
{
    auto d = tryMakeDelta(from_version, to_version);
    pc_assert(d.has_value(), "delta target version not in history");
    return *std::move(d);
}

device::MobileDevice::CommunitySyncResult
CloudUpdateService::syncDevice(device::MobileDevice &dev,
                               u64 target_version, device::ServePath path)
{
    if (cfg_.syncBudgetPerVersion != 0 &&
        syncsThisVersion_ >= cfg_.syncBudgetPerVersion) {
        if (dev.flightRecorder() != nullptr) {
            // Even a shed sync leaves a causal record: the device
            // asked, admission control said no.
            dev.beginSyncTrace();
            obs::SyncEvent ev;
            ev.tier = obs::SyncTier::Server;
            ev.stage = obs::SyncStage::Shed;
            ev.ok = false;
            ev.fromVersion = dev.communityVersion();
            ev.toVersion = latest_;
            ev.detail = cfg_.syncBudgetPerVersion;
            ev.start = dev.now();
            dev.recordSyncStage(ev);
            dev.clearSyncTrace();
        }
        // Budget spent: shed before generating a delta or touching
        // the radio. The device stays at its version and retries
        // after the next publish.
        SyncAccounting acct;
        acct.shed = true;
        accountSync(acct);
        device::MobileDevice::CommunitySyncResult res;
        res.shed = true;
        res.fromVersion = dev.communityVersion();
        res.toVersion = dev.communityVersion();
        return res;
    }
    if (cfg_.syncBudgetPerVersion != 0)
        ++syncsThisVersion_;
    SyncAccounting acct;
    const auto res = syncDetached(dev, &acct, target_version, path);
    accountSync(acct);
    return res;
}

device::MobileDevice::CommunitySyncResult
CloudUpdateService::syncDetached(device::MobileDevice &dev,
                                 SyncAccounting *acct, u64 target_version,
                                 device::ServePath path) const
{
    if (target_version == 0)
        target_version = latest_;
    u64 from_version = dev.communityVersion();
    const bool tracing = dev.flightRecorder() != nullptr;
    if (tracing)
        dev.beginSyncTrace();
    bool escalated = false;
    if (from_version != 0 && dev.needsFullInstall()) {
        // The device's incremental syncs keep dying corrupt/rejected;
        // stop diffing against state we evidently disagree about and
        // ship the whole target model.
        from_version = 0;
        escalated = true;
    }
    const auto delta = tryMakeDelta(from_version, target_version);
    if (tracing) {
        obs::SyncEvent ev;
        ev.tier = obs::SyncTier::Server;
        ev.stage = obs::SyncStage::VersionLookup;
        ev.ok = delta.has_value();
        ev.fromVersion = from_version;
        ev.toVersion = target_version;
        ev.detail = history_.size();
        ev.start = dev.now();
        dev.recordSyncStage(ev);
        if (escalated) {
            obs::SyncEvent esc;
            esc.tier = obs::SyncTier::Server;
            esc.stage = obs::SyncStage::Escalate;
            esc.fromVersion = dev.communityVersion();
            esc.toVersion = target_version;
            esc.detail = dev.badDeltaStreak();
            esc.start = dev.now();
            dev.recordSyncStage(esc);
        }
    }
    if (!delta.has_value()) {
        // Target version off the window (or nothing published):
        // typed failure, no radio traffic, device untouched.
        device::MobileDevice::CommunitySyncResult res;
        res.fromVersion = dev.communityVersion();
        res.toVersion = dev.communityVersion();
        if (acct)
            acct->noVersion = true;
        if (tracing) {
            obs::SyncEvent ev;
            ev.tier = obs::SyncTier::Server;
            ev.stage = obs::SyncStage::NoVersion;
            ev.ok = false;
            ev.fromVersion = from_version;
            ev.toVersion = target_version;
            ev.start = dev.now();
            dev.recordSyncStage(ev);
            dev.clearSyncTrace();
        }
        return res;
    }
    if (tracing) {
        // Op counts only — computing wire bytes here would allocate,
        // and the delivery events carry them anyway.
        obs::SyncEvent ev;
        ev.tier = obs::SyncTier::Server;
        ev.stage = obs::SyncStage::DeltaBuild;
        ev.fromVersion = delta->fromVersion;
        ev.toVersion = delta->toVersion;
        ev.detail = delta->ops();
        ev.start = dev.now();
        dev.recordSyncStage(ev);
    }
    const auto res = dev.syncCommunityUpdate(*delta, path);
    if (acct) {
        acct->ok = res.ok;
        acct->deltaBytes = res.deltaBytes;
        acct->adds = delta->adds.size();
        acct->evicts = delta->evicts.size();
        acct->reranks = delta->reranks.size();
        acct->fullInstall = delta->fromVersion == 0;
        acct->rejected = res.rejected;
        acct->escalated = escalated;
        acct->corruptRetries = res.corruptRejected;
    }
    return res;
}

void
CloudUpdateService::accountSync(const SyncAccounting &acct)
{
    if (acct.shed) {
        registry_.counter("server.sync.shed").bump();
        // Shed syncs cost the sync pipeline nothing — that is the
        // whole point of admission control, and it is what lets a
        // shed-budget squeeze move the server bottleneck.
        return;
    }
    if (cfg_.healthAccounting) {
        // Modeled demand: base cost per admitted sync plus a per-op
        // cost for the delta the service actually served.
        const u64 ops = acct.adds + acct.evicts + acct.reranks;
        registry_.counter("health.server.sync.busy_ns")
            .bump(u64(obs::health::kServerSyncBaseNs) +
                  ops * u64(obs::health::kServerPerDeltaOpNs));
        registry_.counter("health.server.sync.ops").bump();
    }
    if (acct.corruptRetries > 0)
        registry_.counter("server.sync.corrupt_retries")
            .bump(acct.corruptRetries);
    if (acct.rejected)
        registry_.counter("server.sync.rejected").bump();
    if (acct.escalated)
        registry_.counter("server.deltas.escalated_full_installs")
            .bump();
    if (acct.noVersion)
        registry_.counter("server.sync.no_version").bump();
    if (acct.ok) {
        registry_.counter("server.syncs.ok").bump();
        registry_.counter("server.deltas.served").bump();
        registry_.counter("server.deltas.adds").bump(acct.adds);
        registry_.counter("server.deltas.evicts").bump(acct.evicts);
        registry_.counter("server.deltas.reranks").bump(acct.reranks);
        registry_.counter("server.deltas.bytes").bump(acct.deltaBytes);
        registry_.histogram("server.delta.bytes")
            .observe(double(acct.deltaBytes));
        if (acct.fullInstall)
            registry_.counter("server.deltas.full_installs").bump();
    } else {
        registry_.counter("server.syncs.failed").bump();
    }
}

void
CloudUpdateService::publishBuildMetrics(const CommunityModel &m)
{
    const BuildStats &st = m.stats;
    registry_.counter("server.ingest.builds").bump();
    registry_.counter("server.ingest.records").bump(st.records);
    registry_.counter("server.ingest.batches").bump(st.batches);
    if (st.skippedRecords > 0)
        registry_.counter("server.ingest.skipped_records")
            .bump(st.skippedRecords);
    registry_.gauge("server.model.version").set(double(m.version));
    registry_.gauge("server.model.pairs").set(double(st.distinctPairs));
    registry_.gauge("server.model.cached_pairs")
        .set(double(m.contents.pairs.size()));
    registry_.gauge("server.build.shards").set(double(st.shards));
    registry_.gauge("server.build.threads").set(double(st.threads));
    // Queue depths and wall time depend on thread scheduling — useful
    // operator signals, but never part of a byte-gated artifact.
    registry_.gauge("server.queue.max_depth")
        .set(double(st.maxQueueDepth));
    registry_.gauge("server.queue.mean_depth").set(st.meanQueueDepth);
    registry_.gauge("server.build.wall_ms").set(st.wallMs);
    if (st.wallMs > 0.0)
        registry_.gauge("server.ingest.records_per_s")
            .set(double(st.records) / (st.wallMs / 1e3));
    auto &shardRows = registry_.histogram("server.ingest.shard_rows");
    for (const auto &ss : st.shardStats)
        shardRows.observe(double(ss.rows));
    if (cfg_.healthAccounting) {
        // Modeled ingest demand from deterministic op counts: the
        // wall-clock gauges above are real-thread timings and cannot
        // feed a byte-gated ledger.
        registry_.counter("health.server.ingest.busy_ns")
            .bump(st.records * u64(obs::health::kServerPerRecordNs));
        registry_.counter("health.server.ingest.ops")
            .bump(st.records);
        registry_.counter("health.server.queue.busy_ns")
            .bump(st.batches * u64(obs::health::kServerPerBatchNs));
        registry_.counter("health.server.queue.ops").bump(st.batches);
        for (std::size_t i = 0; i < st.shardStats.size(); ++i) {
            const std::string base =
                strformat("health.server.shard.%zu", i);
            registry_.counter(base + ".busy_ns")
                .bump(st.shardStats[i].records *
                      u64(obs::health::kServerPerRecordNs));
            registry_.counter(base + ".ops")
                .bump(st.shardStats[i].records);
        }
    }
}

} // namespace pc::server
