/**
 * @file
 * Versioned community model — the artifact the cloud update service
 * mines from a month of search logs.
 *
 * A model is the triplet table (Table 3) plus the cache contents
 * selected from it, stamped with a monotonically increasing version.
 * The fleet syncs by version: a device that last synced version v and
 * asks for version w receives the *delta* between the two contents,
 * not a full rebuild.
 *
 * encode() is the canonical byte serialization used by the
 * sharded-vs-sequential equality tests and the bench determinism
 * check: two builds are "byte-identical" iff their encodings match.
 * Timing-dependent build statistics (wall time, queue watermarks) are
 * deliberately excluded from the encoding.
 */

#ifndef PC_SERVER_MODEL_H
#define PC_SERVER_MODEL_H

#include <string>
#include <vector>

#include "core/cache_content.h"
#include "logs/triplets.h"

namespace pc::server {

/** Per-shard accounting of one build. */
struct ShardStats
{
    u64 records = 0; ///< Log records routed to this shard.
    u64 rows = 0;    ///< Distinct (query, result) pairs in the shard.
};

/** Accounting of one model build. */
struct BuildStats
{
    u64 records = 0;       ///< Log records ingested.
    u64 batches = 0;       ///< Work items pushed through the queue.
    u32 shards = 0;        ///< Shard count used.
    u32 threads = 0;       ///< Worker threads used.
    u64 distinctPairs = 0; ///< Rows in the merged triplet table.
    /**
     * Poisoned log records dropped at ingest: pair ids outside the
     * universe (a corrupted log line, a collector bug). Counted, never
     * built into the model — and never asserted on, because one bad
     * record in a month of logs must not take the pipeline down.
     */
    u64 skippedRecords = 0;
    std::vector<ShardStats> shardStats; ///< Per-shard, by shard index.

    // Timing-dependent diagnostics: exact but not deterministic.
    // Never fold these into byte-gated reports.
    std::size_t maxQueueDepth = 0; ///< Queue high-water mark.
    double meanQueueDepth = 0.0;   ///< Mean depth at push.
    double wallMs = 0.0;           ///< Wall-clock build time.
};

/** One versioned community model. */
struct CommunityModel
{
    u64 version = 0;              ///< 1-based; 0 means "no model".
    logs::TripletTable table;     ///< Merged, volume-sorted triplets.
    core::CacheContents contents; ///< Selected cache contents.
    BuildStats stats;             ///< How the build went.

    /**
     * Canonical serialization of everything deterministic: version,
     * triplet rows (pair ids + volumes, in row order) and contents
     * (pair ids + scores, in selection order). Byte-equal encodings
     * <=> identical models.
     */
    std::string encode() const;
};

} // namespace pc::server

#endif // PC_SERVER_MODEL_H
