/**
 * @file
 * The nightly cache update (Figure 14), step by step: a phone serves a
 * month of queries, personalizes its cache, then syncs with the server
 * against the next month's community logs. Prints what each protocol
 * step does and proves the exchange stays small.
 */

#include <cstdio>

#include "core/cache_manager.h"
#include "harness/workbench.h"
#include "util/strings.h"

using namespace pc;
using namespace pc::core;

int
main()
{
    harness::Workbench wb(harness::smallWorkbenchConfig());

    // The phone, with last month's community cache installed.
    pc::nvm::FlashConfig fc;
    fc.capacity = 256 * kMiB;
    pc::nvm::FlashDevice flash(fc);
    pc::simfs::FlashStore store(flash);
    PocketSearch ps(wb.universe(), store);
    SimTime t = 0;
    ps.loadCommunity(wb.communityCache(), t);
    std::printf("phone cache after community push: %zu pairs, %s DRAM, "
                "%s flash\n",
                ps.pairs(), humanBytes(ps.dramBytes()).c_str(),
                humanBytes(ps.flashLogicalBytes()).c_str());

    // A month of use: the user clicks through their stream; the cache
    // learns their personal pairs and marks what they touched.
    workload::PopulationSampler sampler(wb.population());
    Rng rng(11);
    auto profile =
        sampler.sampleUserOfClass(rng, workload::UserClass::High);
    workload::UserStream stream(wb.universe(), profile, 3, 0);
    stream.setEpoch(1);
    u64 hits = 0, events = 0;
    for (const auto &ev : stream.month(0)) {
        hits += ps.containsPair(ev.pair);
        ++events;
        ps.recordClick(ev.pair, t);
    }
    std::printf("month of use: %llu/%llu hits (%.0f%%), cache grew to "
                "%zu pairs (+%llu learned)\n",
                (unsigned long long)hits, (unsigned long long)events,
                100.0 * double(hits) / double(events), ps.pairs(),
                (unsigned long long)ps.stats().pairsLearned);

    // Nightly sync: the server re-extracts the popular set from the
    // latest month of community logs and merges.
    const auto fresh_log = wb.nextCommunityMonth();
    const auto fresh = logs::TripletTable::fromLog(fresh_log);
    CacheManager manager(wb.universe());
    UpdatePolicy policy;
    policy.content.kind = ThresholdKind::VolumeShare;
    policy.content.volumeShare = 0.55;

    const auto stats = manager.update(ps, fresh, policy, t);
    std::printf("\nFigure 14 update cycle:\n");
    std::printf("  phone -> server: hash table upload         %s\n",
                humanBytes(stats.bytesToServer).c_str());
    std::printf("  server: untouched community pairs pruned   %zu\n",
                stats.pairsPruned);
    std::printf("  server: decayed user pairs expired          %zu\n",
                stats.pairsExpired);
    std::printf("  server: user-touched pairs kept             %zu\n",
                stats.pairsKept);
    std::printf("  server: fresh popular pairs installed       %zu\n",
                stats.pairsAdded);
    std::printf("  server: score conflicts (max wins)          %zu\n",
                stats.conflicts);
    std::printf("  server -> phone: new table + %zu record patches, "
                "%s total\n",
                stats.recordsPatched,
                humanBytes(stats.bytesToPhone).c_str());
    std::printf("\ncache after update: %zu pairs; whole exchange %s "
                "(paper budget: ~1.5 MB)\n",
                ps.pairs(),
                humanBytes(stats.bytesToServer +
                           stats.bytesToPhone).c_str());

    // The user's habits survived the refresh.
    workload::UserStream replay(wb.universe(), profile, 3, 0);
    replay.setEpoch(1);
    u64 hits2 = 0, events2 = 0;
    for (const auto &ev : replay.month(workload::kMonth)) {
        hits2 += ps.containsPair(ev.pair);
        ++events2;
    }
    std::printf("replaying the user's habits after the update: "
                "%llu/%llu hits (%.0f%%)\n",
                (unsigned long long)hits2, (unsigned long long)events2,
                100.0 * double(hits2) / double(events2));
    return 0;
}
