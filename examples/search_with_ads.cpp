/**
 * @file
 * Search with advertisements: PocketSearch as the paper's full "search
 * and advertisement pocket cloudlet" (Figure 1 shows ads in the box),
 * with the Section 7 coordinator deciding when the ad cache is even
 * consulted and keeping eviction coordinated.
 */

#include <cstdio>

#include "core/ad_cloudlet.h"
#include "core/coordinator.h"
#include "harness/workbench.h"
#include "util/strings.h"

using namespace pc;
using namespace pc::core;

int
main()
{
    harness::Workbench wb(harness::smallWorkbenchConfig());

    pc::nvm::FlashConfig fc;
    fc.capacity = 512 * kMiB;
    pc::nvm::FlashDevice flash(fc);
    pc::simfs::FlashStore store(flash);
    PocketSearch search(wb.universe(), store);
    AdCloudlet ads(store);
    CloudletCoordinator coord(search, ads);

    // Overnight push: the community cache plus an ad for each of the
    // 200 most popular cached queries (sponsors bid on head queries).
    SimTime t = 0;
    search.loadCommunity(wb.communityCache(), t);
    for (std::size_t i = 0;
         i < 200 && i < wb.communityCache().pairs.size(); ++i) {
        const auto &q = wb.universe()
                            .query(wb.communityCache().pairs[i].pair.query)
                            .text;
        if (ads.containsQuery(q))
            continue;
        AdRecord ad;
        ad.advertiser = "SponsorOf_" + q.substr(0, 6);
        ad.banner = "Great deals on " + q + "!";
        ad.targetUrl = "www.deals.com/" + q;
        ads.installAd(q, ad, t);
    }
    std::printf("pushed: %zu search pairs, %zu ads (%s + %s flash)\n\n",
                search.pairs(), ads.entries(),
                humanBytes(search.flashLogicalBytes()).c_str(),
                humanBytes(ads.dataBytes()).c_str());

    // 1. A popular query: local results AND a local ad, instantly.
    const auto &hot =
        wb.universe().query(wb.communityCache().pairs[0].pair.query).text;
    auto page = coord.serveQuery(hot, 2);
    std::printf("serve(\"%s\") in %s:\n", hot.c_str(),
                humanTime(page.latency).c_str());
    for (const auto &rec : page.search.results)
        std::printf("  result: %s\n", rec.url.c_str());
    if (page.adShown)
        std::printf("  ad:     [%s] %s\n", page.ad.advertiser.c_str(),
                    page.ad.banner.c_str());

    // 2. A cold query: search misses and the ad cache is not even
    //    probed — the radio wake-up dominates anyway.
    const u32 cold = wb.universe().numResults() - 1;
    const auto &cold_q = wb.universe()
                             .query(wb.universe().result(cold)
                                        .queries.front()
                                        .first)
                             .text;
    page = coord.serveQuery(cold_q, 2);
    std::printf("\nserve(\"%s\") -> search MISS; ad probes skipped so "
                "far: %llu\n",
                cold_q.c_str(),
                (unsigned long long)coord.stats().adProbesSkipped);

    // 3. Coordinated eviction: dropping a query removes its ad too.
    std::printf("\nevicting \"%s\" from both cloudlets...\n",
                hot.c_str());
    coord.evictQueries({hot});
    page = coord.serveQuery(hot, 2);
    std::printf("serve(\"%s\") -> %s, ad shown: %s\n", hot.c_str(),
                page.search.hit ? "HIT" : "MISS",
                page.adShown ? "yes" : "no");
    std::printf("\ncoordinator totals: %llu pages, %llu search hits, "
                "%llu ads shown, %llu probes skipped\n",
                (unsigned long long)coord.stats().pagesServed,
                (unsigned long long)coord.stats().searchHits,
                (unsigned long long)coord.stats().adHits,
                (unsigned long long)coord.stats().adProbesSkipped);
    return 0;
}
