/**
 * @file
 * Incremental search: recreates the paper's Figure 1 GUI behaviour in
 * the terminal. As each character of a query is "typed", the
 * auto-suggest box instantly fills with cached completions *and their
 * actual search results* — no radio involved at any point.
 */

#include <cstdio>

#include "core/pocket_search.h"
#include "harness/workbench.h"
#include "util/strings.h"

using namespace pc;

int
main()
{
    harness::Workbench wb(harness::smallWorkbenchConfig());

    pc::nvm::FlashConfig fc;
    fc.capacity = 256 * kMiB;
    pc::nvm::FlashDevice flash(fc);
    pc::simfs::FlashStore store(flash);
    core::PocketSearch ps(wb.universe(), store);
    SimTime t = 0;
    ps.loadCommunity(wb.communityCache(), t);

    std::printf("auto-suggest index: %zu queries in %s of fast "
                "memory\n\n",
                ps.suggestIndex().size(),
                humanBytes(ps.suggestIndex().memoryBytes()).c_str());

    // "Type" the most popular cached query, character by character.
    const auto &top = wb.communityCache().pairs.front().pair;
    const std::string target = wb.universe().query(top.query).text;

    for (std::size_t len = 1; len <= target.size(); ++len) {
        const std::string typed = target.substr(0, len);
        auto out = ps.suggestWithResults(typed, 3, 1);
        std::printf("[%s_]  (%s per keystroke)\n", typed.c_str(),
                    humanTime(out.latency).c_str());
        if (out.rows.empty())
            std::printf("      (no cached completions)\n");
        for (const auto &row : out.rows) {
            std::printf("      %-24s", row.suggestion.query.c_str());
            if (!row.results.empty())
                std::printf("  -> %s", row.results[0].url.c_str());
            std::printf("\n");
        }
        // Stop early once the box has narrowed to the target.
        if (out.rows.size() == 1 &&
            out.rows[0].suggestion.query == target && len >= 3)
            break;
    }

    std::printf("\nThe user taps the first row: the full results page "
                "renders from flash in ~370 ms —\nno 3G wake-up, no "
                "round trips (compare several seconds via the radio).\n");
    return 0;
}
