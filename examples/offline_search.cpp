/**
 * @file
 * Offline search: the paper's motivating scenario pushed to its limit.
 * On a subway/flight, the radio is unavailable — every query the cache
 * cannot answer simply fails — and without results there is no
 * click-through, so the cache can only personalize on its own hits.
 * Even so, PocketSearch keeps roughly half the user's searches working
 * with no connectivity at all, instantly.
 */

#include <cstdio>

#include "core/pocket_search.h"
#include "harness/workbench.h"
#include "util/strings.h"
#include "util/stats.h"

using namespace pc;

int
main()
{
    harness::Workbench wb(harness::smallWorkbenchConfig());

    pc::nvm::FlashConfig fc;
    fc.capacity = 256 * kMiB;
    pc::nvm::FlashDevice flash(fc);
    pc::simfs::FlashStore store(flash);
    core::PocketSearch ps(wb.universe(), store);
    SimTime t = 0;
    ps.loadCommunity(wb.communityCache(), t);

    // 40 commuters of mixed classes go underground for a day.
    workload::PopulationSampler sampler(wb.population());
    Rng seeder(404);
    RunningStat offline_rate;
    RunningStat serve_ms;
    for (int u = 0; u < 40; ++u) {
        Rng ur = seeder.fork();
        auto profile = sampler.sampleUser(ur);
        workload::UserStream stream(wb.universe(), profile,
                                    seeder.next(), 0);
        stream.setEpoch(1);

        // Each commuter gets their own phone cache copy.
        pc::nvm::FlashDevice f2(fc);
        pc::simfs::FlashStore s2(f2);
        core::PocketSearch cache(wb.universe(), s2);
        SimTime tt = 0;
        cache.loadCommunity(wb.communityCache(), tt);

        u64 served = 0, failed = 0;
        for (const auto &ev : stream.month(0)) {
            auto out = cache.lookupPair(ev.pair, 2);
            const bool ok = out.hit && cache.containsPair(ev.pair);
            if (ok) {
                ++served;
                serve_ms.add(toMillis(out.hashLookupTime +
                                      out.fetchTime));
                // Clicks still personalize, radio or not.
                cache.recordClick(ev.pair, tt);
            } else {
                ++failed; // no radio: the query simply fails
            }
        }
        offline_rate.add(double(served) / double(served + failed));
    }

    std::printf("Offline search with no radio at all (40 users, one "
                "month of queries):\n");
    std::printf("  queries still answered: %.0f%% on average "
                "(min %.0f%%, max %.0f%%)\n",
                100.0 * offline_rate.mean(), 100.0 * offline_rate.min(),
                100.0 * offline_rate.max());
    std::printf("  served from flash in %.1f ms on average (plus "
                "~360 ms of page rendering)\n", serve_ms.mean());
    std::printf("\nThe same cache also relieves the network when "
                "connectivity exists: every one of those\nqueries "
                "would otherwise have hit the cell and the search "
                "datacenter.\n");
    return 0;
}
