/**
 * @file
 * Offline search: the paper's motivating scenario pushed to its limit.
 * On a subway/flight the radio is dead — no exchange completes — yet
 * the device must never show an error. Cache hits serve locally as
 * always; misses retry with backoff, then degrade gracefully (stale
 * cached results when the query string is cached, the offline page
 * otherwise) and queue. When coverage returns, the queued misses sync
 * and the cache learns them as if they had been clicked online.
 */

#include <cstdio>

#include "device/mobile_device.h"
#include "fault/fault_plan.h"
#include "harness/workbench.h"
#include "util/stats.h"
#include "util/strings.h"

using namespace pc;
using namespace pc::device;

int
main()
{
    harness::Workbench wb(harness::smallWorkbenchConfig());

    // 12 commuters of mixed classes go underground for a day; the
    // radio is dead the whole ride (every exchange attempt fails).
    workload::PopulationSampler sampler(wb.population());
    Rng seeder(404);
    RunningStat offline_rate;
    RunningStat hit_ms;
    u64 stale = 0, offline_pages = 0, queued = 0, synced = 0;
    CounterBag counters;
    for (int u = 0; u < 12; ++u) {
        Rng ur = seeder.fork();
        const auto profile = sampler.sampleUser(ur);
        workload::UserStream stream(wb.universe(), profile,
                                    seeder.next(), 0);
        stream.setEpoch(1);

        MobileDevice phone(wb.universe());
        phone.installCommunityCache(wb.communityCache());
        fault::FaultConfig fc;
        fc.seed = u64(1000 + u);
        fc.radio.exchangeFailureRate = 1.0; // the tunnel
        fault::FaultPlan plan(fc);
        phone.attachFaults(&plan);

        u64 served = 0, degraded = 0;
        for (const auto &ev : stream.month(0)) {
            const auto out =
                phone.serveQuery(ev.pair, ServePath::PocketSearch, true);
            if (out.cacheHit) {
                ++served;
                hit_ms.add(toMillis(out.hashLookupTime + out.fetchTime));
            } else {
                ++degraded; // stale results or the offline page — no error
            }
            phone.advanceTime(20 * kSecond);
        }
        offline_rate.add(double(served) / double(served + degraded));

        // Back above ground: coverage returns, the queue drains.
        phone.attachFaults(nullptr);
        const auto sync = phone.syncMissQueue();
        const auto &rs = phone.resilience();
        stale += rs.staleServes;
        offline_pages += rs.offlinePages;
        queued += rs.queuedMisses;
        synced += sync.synced;
        counters.merge(rs.toCounters());
    }

    std::printf("Offline search with a dead radio (12 commuters, one "
                "month of queries each):\n");
    std::printf("  queries still answered from the cache: %.0f%% on "
                "average (min %.0f%%, max %.0f%%)\n",
                100.0 * offline_rate.mean(), 100.0 * offline_rate.min(),
                100.0 * offline_rate.max());
    std::printf("  served from flash in %.1f ms on average (plus "
                "~360 ms of page rendering)\n", hit_ms.mean());
    std::printf("  degraded serves: %llu stale result pages, %llu "
                "offline pages — zero errors shown\n",
                (unsigned long long)stale,
                (unsigned long long)offline_pages);
    std::printf("  misses queued underground: %llu; synced once "
                "coverage returned: %llu\n",
                (unsigned long long)queued, (unsigned long long)synced);

    harness::printCounterReport("Combined resilience ledger", counters);

    std::printf("\nThe same cache also relieves the network when "
                "connectivity exists: every one of those\nqueries "
                "would otherwise have hit the cell and the search "
                "datacenter.\n");
    return 0;
}
