/**
 * @file
 * A day in the life: one user's search day on a simulated smartphone,
 * with and without PocketSearch.
 *
 * Replays the same query sequence through (a) the paper's architecture
 * (cache first, 3G on a miss) and (b) plain 3G, then reports
 * response-time and battery impact — the user-facing version of
 * Figures 15 and 16.
 */

#include <cstdio>

#include "device/mobile_device.h"
#include "harness/workbench.h"
#include "util/strings.h"
#include "util/stats.h"

using namespace pc;
using namespace pc::device;

int
main()
{
    harness::Workbench wb(harness::smallWorkbenchConfig());

    // One medium-volume user; their day is ~1/28th of a month's
    // queries, padded to a demo-friendly dozen.
    workload::PopulationSampler sampler(wb.population());
    Rng rng(2026);
    auto profile =
        sampler.sampleUserOfClass(rng, workload::UserClass::Medium);
    profile.monthlyVolume = 12 * 28;
    workload::UserStream stream(wb.universe(), profile, 7, 0);
    stream.setEpoch(1);
    auto month = stream.month(0);
    month.resize(12); // the first simulated day

    struct DayResult
    {
        SimTime total = 0;
        MicroJoules energy = 0;
        u32 hits = 0;
    };

    auto run_day = [&](bool with_cache) {
        MobileDevice dev(wb.universe());
        if (with_cache)
            dev.installCommunityCache(wb.communityCache());
        DayResult day;
        for (const auto &ev : month) {
            const auto out = dev.serveQuery(
                ev.pair,
                with_cache ? ServePath::PocketSearch
                           : ServePath::ThreeG);
            day.total += out.latency;
            day.energy += out.energy;
            day.hits += out.cacheHit;
            // The user reads results for a while between queries (the
            // radio drops back to standby).
            dev.advanceTime(10 * 60 * kSecond);
        }
        return day;
    };

    const DayResult with = run_day(true);
    const DayResult without = run_day(false);

    std::printf("A day of %zu searches on the simulated phone\n",
                month.size());
    std::printf("\n                        with PocketSearch     plain 3G\n");
    std::printf("  served from cache     %10u/%zu        %10s\n",
                with.hits, month.size(), "0");
    std::printf("  time waiting          %14s   %12s\n",
                humanTime(with.total).c_str(),
                humanTime(without.total).c_str());
    std::printf("  energy spent          %11.1f J   %11.1f J\n",
                with.energy / 1e6, without.energy / 1e6);
    std::printf("\n  waiting reduced by    %.0f%%\n",
                100.0 * (1.0 - toSeconds(with.total) /
                                   toSeconds(without.total)));
    std::printf("  energy reduced by     %.0f%%\n",
                100.0 * (1.0 - with.energy / without.energy));

    // Battery framing: a 2010 smartphone battery is ~5 Wh = 18 kJ.
    const double battery_uj = 5.0 * 3600.0 * 1e6;
    std::printf("  battery used          %.2f%% vs %.2f%% "
                "(5 Wh battery)\n",
                100.0 * with.energy / battery_uj,
                100.0 * without.energy / battery_uj);
    return 0;
}
