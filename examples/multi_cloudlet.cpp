/**
 * @file
 * Multiple pocket cloudlets on one phone (Sections 3 and 7): search,
 * mobile ads, and map tiles share the device's flash. The OS-style
 * arbiter accounts each cloudlet's index/data footprint and, when the
 * user needs space back, shrinks the tile cloudlets lowest-value-first.
 */

#include <cstdio>
#include <vector>

#include "core/pocket_search.h"
#include "core/tile_cloudlet.h"
#include "harness/workbench.h"
#include "util/strings.h"

using namespace pc;
using namespace pc::core;

namespace {

void
printCloudlets(const std::vector<Cloudlet *> &cloudlets)
{
    std::printf("  %-8s %12s %12s %10s %8s\n", "cloudlet", "index",
                "data", "lookups", "hit rate");
    Bytes index_total = 0, data_total = 0;
    for (const Cloudlet *c : cloudlets) {
        std::printf("  %-8s %12s %12s %10llu %7.0f%%\n",
                    c->name().c_str(),
                    humanBytes(c->indexBytes()).c_str(),
                    humanBytes(c->dataBytes()).c_str(),
                    (unsigned long long)c->lookups(),
                    100.0 * c->hitRate());
        index_total += c->indexBytes();
        data_total += c->dataBytes();
    }
    std::printf("  %-8s %12s %12s\n", "total",
                humanBytes(index_total).c_str(),
                humanBytes(data_total).c_str());
}

} // namespace

int
main()
{
    harness::Workbench wb(harness::smallWorkbenchConfig());

    // One flash part hosts every cloudlet's files plus user data.
    pc::nvm::FlashConfig fc;
    fc.capacity = 1 * kGiB;
    pc::nvm::FlashDevice flash(fc);
    pc::simfs::FlashStore store(flash);

    // The search cloudlet (the paper's showcase)...
    PocketSearch ps(wb.universe(), store);
    SimTime t = 0;
    ps.loadCommunity(wb.communityCache(), t);
    SearchCloudlet search(ps);

    // ...and two sibling item cloudlets from Table 2's families.
    TileCloudletConfig ads_cfg;
    ads_cfg.name = "ads";
    ads_cfg.itemSize = 5 * kKiB;
    ads_cfg.universeItems = 500'000;
    ads_cfg.popularitySkew = 1.0;
    TileCloudlet ads(store, ads_cfg);

    TileCloudletConfig maps_cfg;
    maps_cfg.name = "maps";
    maps_cfg.itemSize = 5 * kKiB;
    maps_cfg.universeItems = 2'000'000;
    maps_cfg.popularitySkew = 0.7;
    TileCloudlet maps(store, maps_cfg);

    ads.fillTop(4'000, t);
    maps.fillTop(20'000, t);

    std::vector<Cloudlet *> cloudlets = {&search, &ads, &maps};
    std::printf("after the overnight push:\n");
    printCloudlets(cloudlets);

    // A burst of traffic against all three services.
    Rng rng(99);
    workload::PopulationSampler sampler(wb.population());
    auto profile =
        sampler.sampleUserOfClass(rng, workload::UserClass::High);
    workload::UserStream stream(wb.universe(), profile, 17);
    for (int i = 0; i < 120; ++i) {
        const auto ev = stream.next();
        ps.lookupPair(ev.pair);
        ps.recordClick(ev.pair, t);
        SimTime tt = 0;
        ads.access(ads.sampleAccess(rng), tt);
        maps.access(maps.sampleAccess(rng), tt);
    }
    stream.beginMonth(0);
    std::printf("\nafter a burst of traffic:\n");
    printCloudlets(cloudlets);

    // The user installs a big app: the OS reclaims ~60 MB from the
    // cloudlets, least-valuable content first (tile tails).
    std::printf("\nreclaiming space: shrink maps to 40 MB, ads to "
                "10 MB\n");
    const Bytes freed = maps.shrinkTo(40 * kMiB) +
                        ads.shrinkTo(10 * kMiB) +
                        search.shrinkTo(0);
    std::printf("  released %s (search shrinks only via its nightly "
                "rebuild)\n",
                humanBytes(freed).c_str());
    printCloudlets(cloudlets);
    std::printf("\nexpected hit rates after shrink: ads %.0f%%, maps "
                "%.0f%% (popularity heads survive)\n",
                100.0 * ads.expectedHitRate(),
                100.0 * maps.expectedHitRate());
    return 0;
}
