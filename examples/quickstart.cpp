/**
 * @file
 * Quickstart: build a community cache from synthetic mobile search
 * logs, install it in a PocketSearch instance on a simulated phone's
 * flash, look up queries, and watch personalization re-rank results.
 *
 * This walks the library's core API end to end in ~80 lines:
 *
 *   QueryUniverse  -> the world of queries/results
 *   LogGenerator   -> a month of community search logs
 *   TripletTable   -> <query, result, volume> aggregation (Table 3)
 *   CacheContentBuilder -> pick what to cache (Section 5.1)
 *   PocketSearch   -> the on-phone cache (hash table + flash DB)
 */

#include <cstdio>

#include "core/cache_content.h"
#include "core/pocket_search.h"
#include "harness/workbench.h"
#include "util/strings.h"

using namespace pc;

int
main()
{
    // 1. A small world and one month of community logs. The Workbench
    //    bundles the steps; see its source for the unbundled calls.
    std::printf("Building a small world and a month of logs...\n");
    harness::Workbench wb(harness::smallWorkbenchConfig());
    std::printf("  %zu log records, %zu distinct (query, result) pairs\n",
                wb.buildLog().size(), wb.triplets().rows().size());

    // 2. The community cache: top pairs covering 55%% of click volume.
    const auto &cache = wb.communityCache();
    std::printf("  cache: %zu pairs, %zu results, %s DRAM + %s flash\n",
                cache.pairs.size(), cache.uniqueResults,
                humanBytes(cache.dramBytes).c_str(),
                humanBytes(cache.flashBytes).c_str());

    // 3. A phone: flash device, file store, PocketSearch.
    pc::nvm::FlashConfig flash_cfg;
    flash_cfg.capacity = 1 * kGiB;
    pc::nvm::FlashDevice flash(flash_cfg);
    pc::simfs::FlashStore store(flash);
    core::PocketSearch ps(wb.universe(), store);
    SimTime push_time = 0;
    ps.loadCommunity(cache, push_time);
    std::printf("  community push wrote flash for %s\n",
                humanTime(push_time).c_str());

    // 4. Look up the most popular cached query.
    const auto &top_pair = cache.pairs.front().pair;
    const std::string &query = wb.universe().query(top_pair.query).text;
    auto out = ps.lookup(query, 2);
    std::printf("\nlookup(\"%s\") -> %s in %s\n", query.c_str(),
                out.hit ? "HIT" : "MISS",
                humanTime(out.hashLookupTime + out.fetchTime).c_str());
    for (const auto &rec : out.results)
        std::printf("  %s — %s\n", rec.title.c_str(), rec.url.c_str());

    // 5. A miss: an unpopular query is not cached...
    const u32 cold = wb.universe().numResults() - 1;
    const workload::PairRef cold_pair{
        wb.universe().result(cold).queries.front().first, cold};
    const std::string &cold_q =
        wb.universe().query(cold_pair.query).text;
    std::printf("\nlookup(\"%s\") -> %s\n", cold_q.c_str(),
                ps.lookup(cold_q).hit ? "HIT" : "MISS");

    // ...until the user clicks through once (personalization).
    SimTime learn = 0;
    ps.recordClick(cold_pair, learn);
    std::printf("after one click-through -> %s (cache learned it)\n",
                ps.lookup(cold_q).hit ? "HIT" : "MISS");

    // 6. Personalized re-ranking: keep clicking the second result of a
    //    two-result query and watch it take the top spot.
    for (const auto &sp : cache.pairs) {
        const auto refs = ps.table().lookup(
            wb.universe().query(sp.pair.query).text);
        if (refs.size() < 2)
            continue;
        const std::string &q2 =
            wb.universe().query(sp.pair.query).text;
        auto before = ps.lookup(q2, 2);
        std::printf("\nre-ranking demo on \"%s\":\n  before: %s\n",
                    q2.c_str(), before.results[0].url.c_str());
        // Click the currently-second result three times.
        for (int i = 0; i < 3; ++i)
            ps.table().applyClick(q2, before.urlHashes[1], 0.1);
        auto after = ps.lookup(q2, 2);
        std::printf("  after 3 clicks on the runner-up: %s\n",
                    after.results[0].url.c_str());
        break;
    }

    std::printf("\nDone. See examples/day_in_the_life.cpp for the full "
                "device (latency/energy) simulation.\n");
    return 0;
}
